package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dmc/internal/core"
	"dmc/internal/matrix"
	"dmc/internal/rules"
	"dmc/internal/stream"
)

// TestErrorBodyCarriesRequestID: every error response is the structured
// {"error", "request_id"} object, so clients can cite a failure the
// operator can find in the trace logs.
func TestErrorBodyCarriesRequestID(t *testing.T) {
	ts := testServer(t)
	var body map[string]string
	getJSON(t, ts.URL+"/v1/datasets/nope", http.StatusNotFound, &body)
	if body["error"] == "" {
		t.Fatal("error body has no error field")
	}
	if body["request_id"] == "" {
		t.Fatal("error body has no request_id field")
	}
	getJSON(t, ts.URL+"/v1/datasets/baskets/implications?threshold=9000", http.StatusBadRequest, &body)
	if body["error"] == "" || body["request_id"] == "" {
		t.Fatalf("bad-param error body incomplete: %v", body)
	}
}

// TestClientDisconnectCancelsMine: dropping the connection mid-mine
// must cancel the pipeline via the request context — the mine goroutine
// observes ctx and aborts instead of running to completion.
func TestClientDisconnectCancelsMine(t *testing.T) {
	s := NewWith(Config{})
	m, err := matrix.ReadBaskets(strings.NewReader("a b\na b\n"))
	if err != nil {
		t.Fatal(err)
	}
	s.Add("slow", m)
	sawCancel := make(chan error, 1)
	s.mineImp = func(_ *matrix.Matrix, _ core.Threshold, o core.Options, _ int) ([]rules.Implication, core.Stats, error) {
		<-o.Ctx.Done() // a real pipeline polls this each interrupt stride
		err := &core.CancelError{Cause: o.Ctx.Err()}
		sawCancel <- err
		return nil, core.Stats{}, err
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/datasets/slow/implications", nil)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel() // client walks away
	}()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request should have been aborted by the client")
	}
	select {
	case err := <-sawCancel:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mine saw %v, want context.Canceled", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("disconnect never reached the mine's context")
	}
	if s.metrics.cancelled.Value() < 1 {
		t.Fatal("dmc_mines_cancelled_total did not count the abort")
	}
}

// TestBudgetDegradeToStream: a resident mine that overflows
// Config.MemBudgetBytes must transparently re-run through the
// out-of-core engine and still return the exact rules — 200, not 507.
func TestBudgetDegradeToStream(t *testing.T) {
	s := NewWith(Config{MemBudgetBytes: 1})
	s.mineImp = func(m *matrix.Matrix, th core.Threshold, o core.Options, workers int) ([]rules.Implication, core.Stats, error) {
		// Resident pipeline stand-in that cannot honor a 1-byte budget;
		// the streamed fallback runs the real engine, whose bitmap
		// endgame absorbs the overflow.
		return nil, core.Stats{}, &core.BudgetError{Bytes: 64, Budget: o.MemBudgetBytes, RemainingRows: 5}
	}
	m, err := matrix.ReadBaskets(strings.NewReader(
		"bread butter jam\nbread butter\nbread butter coffee\nbread butter jam\nbread coffee\n"))
	if err != nil {
		t.Fatal(err)
	}
	s.Add("baskets", m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var resp MineResponse[ImplicationWire]
	getJSON(t, ts.URL+"/v1/datasets/baskets/implications?threshold=100", http.StatusOK, &resp)
	if resp.Total == 0 {
		t.Fatal("degraded mine returned no rules")
	}
	if s.metrics.degraded.Value() < 1 {
		t.Fatal("dmc_mines_degraded_total did not count the fallback")
	}
}

// TestBudgetExhausted507: when even the degraded path cannot fit the
// budget, the client gets a typed 507, not a 500 or wrong rules.
func TestBudgetExhausted507(t *testing.T) {
	s := NewWith(Config{})
	s.mineImp = func(*matrix.Matrix, core.Threshold, core.Options, int) ([]rules.Implication, core.Stats, error) {
		return nil, core.Stats{}, nil
	}
	s.mineSim = func(*matrix.Matrix, core.Threshold, core.Options, int) ([]rules.Similarity, core.Stats, error) {
		return nil, core.Stats{}, &core.BudgetError{Bytes: 128, Budget: 64, RemainingRows: 10}
	}
	// Make the sim degrade path fail the same way, so the 507 surfaces.
	s.mineSimFile = func(string, core.Threshold, core.Options, stream.Config) ([]rules.Similarity, core.Stats, error) {
		return nil, core.Stats{}, &core.BudgetError{Bytes: 128, Budget: 64, RemainingRows: 10}
	}
	m, err := matrix.ReadBaskets(strings.NewReader("a b\na b\n"))
	if err != nil {
		t.Fatal(err)
	}
	s.Add("d", m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	var body map[string]string
	getJSON(t, ts.URL+"/v1/datasets/d/similarities", http.StatusInsufficientStorage, &body)
	if !strings.Contains(body["error"], "memory budget") {
		t.Fatalf("507 body = %v", body)
	}
}
