package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"dmc/internal/core"
	"dmc/internal/fleet"
	"dmc/internal/rules"
	"dmc/internal/store"
)

// The fleet endpoints: this file is the worker side of internal/fleet
// (shard tasks in, rule payloads out) plus the coordinator routing for
// ?fleet=1 mine requests. A worker's shard mine runs through the same
// admission control and cache as any local mine — the shard-suffixed
// cache key (params.shard) keeps partial results from ever aliasing a
// full-mine entry.

// handleFleetInfo implements GET /v1/fleet/info: the health/capacity
// probe a coordinator's registry polls. Status mirrors /v1/readyz.
func (s *Server) handleFleetInfo(w http.ResponseWriter, r *http.Request) {
	status := "ready"
	switch {
	case s.draining.Load():
		status = "draining"
	case !s.ready.Load():
		status = "loading"
	}
	s.mu.RLock()
	n := len(s.datasets)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, fleet.Info{Status: status, CPUs: runtime.GOMAXPROCS(0), Datasets: n})
}

// handleFleetDataset implements PUT /v1/fleet/datasets/{name}: a
// coordinator pushing a dataset replica. Replicas are registered
// resident but deliberately not committed to this worker's store — the
// coordinator owns durability, and a worker restart simply answers the
// next shard task with 404 to get the replica re-pushed.
func (s *Server) handleFleetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validDatasetName(name) {
		writeErr(w, r, http.StatusBadRequest, "invalid dataset name %q", name)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxUploadBytes())
	m, err := fleet.DecodeDataset(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, r, http.StatusRequestEntityTooLarge, "replica exceeds the %d-byte upload limit", tooBig.Limit)
			return
		}
		writeErr(w, r, http.StatusBadRequest, "parsing dataset replica: %v", err)
		return
	}
	if m.NumRows() == 0 || m.NumOnes() == 0 {
		writeErr(w, r, http.StatusBadRequest, "dataset replica has no transactions")
		return
	}
	hash, err := store.ContentHash(m)
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "hashing dataset replica: %v", err)
		return
	}
	inf := info(name, m)
	s.add(name, &dataset{m: m, info: inf, hash: hash})
	writeJSON(w, http.StatusCreated, inf)
}

// handleFleetShard implements POST /v1/fleet/shard: run one column
// shard of a mine against the local replica and stream back the owned
// rules in the dmcrules text format (canonically sorted, so the
// payload for a given task is byte-deterministic). 404/409 signal a
// missing/stale replica — the coordinator answers with a push and a
// retry; overload sheds surface as the usual 429/503 + Retry-After.
func (s *Server) handleFleetShard(w http.ResponseWriter, r *http.Request) {
	var t fleet.Task
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&t); err != nil {
		writeErr(w, r, http.StatusBadRequest, "parsing shard task: %v", err)
		return
	}
	if err := t.Validate(); err != nil {
		writeErr(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if t.Workers < 0 || t.Workers > maxWorkers {
		writeErr(w, r, http.StatusBadRequest, "task workers %d outside [0,%d]", t.Workers, maxWorkers)
		return
	}
	d, ok := s.get(t.Dataset)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "no dataset %q on this worker; push the replica", t.Dataset)
		return
	}
	if d.hash == "" || d.hash != t.Hash {
		writeErr(w, r, http.StatusConflict, "replica of %q has content %q, task wants %q; push the replica",
			t.Dataset, d.hash, t.Hash)
		return
	}
	shard := core.ShardRange{Lo: t.ColLo, Hi: t.ColHi}
	if err := shard.Validate(d.info.Cols); err != nil {
		writeErr(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if t.Prefilter && t.Mode != "sim" {
		writeErr(w, r, http.StatusBadRequest, "prefilter applies to similarity mining only")
		return
	}
	if t.Prefilter && d.m == nil {
		writeErr(w, r, http.StatusBadRequest, "prefilter needs a resident replica")
		return
	}
	p := params{
		threshold: t.Threshold, minSupport: t.MinSupport,
		workers: t.Workers, prefilter: t.Prefilter, shard: &shard,
	}
	opts := core.Options{
		MinSupport: p.minSupport, Hooks: s.hooks,
		MemBudgetBytes: s.cfg.MemBudgetBytes, Shard: &shard,
	}
	switch t.Mode {
	case "imp":
		rs, cached := s.cachedImps(d, p)
		if !cached {
			var ok bool
			rs, _, ok = runMine(s, w, r, "imp-shard", func(ctx context.Context) ([]rules.Implication, core.Stats, error) {
				opts := opts
				opts.Ctx = ctx
				if d.m == nil {
					return s.mineImpFile(d.path, core.FromPercent(p.threshold), opts, s.streamCfg(p.workers, ctx))
				}
				return s.mineImpMem(d.m, core.FromPercent(p.threshold), opts, p.workers)
			})
			if !ok {
				return
			}
			s.storeImps(d, p, rs)
		}
		sorted := append([]rules.Implication(nil), rs...)
		rules.SortImplications(sorted)
		writeRulePayload(w, func(buf *bytes.Buffer) error {
			return rules.WriteImplications(buf, sorted)
		})
	case "sim":
		if p.prefilter {
			opts.Prefilter = &core.PrefilterOptions{}
		}
		rs, cached := s.cachedSims(d, p)
		if !cached {
			var ok bool
			rs, _, ok = runMine(s, w, r, "sim-shard", func(ctx context.Context) ([]rules.Similarity, core.Stats, error) {
				opts := opts
				opts.Ctx = ctx
				if d.m == nil {
					return s.mineSimFile(d.path, core.FromPercent(p.threshold), opts, s.streamCfg(p.workers, ctx))
				}
				return s.mineSimMem(d.m, core.FromPercent(p.threshold), opts, p.workers)
			})
			if !ok {
				return
			}
			s.storeSims(d, p, rs)
		}
		sorted := append([]rules.Similarity(nil), rs...)
		rules.SortSimilarities(sorted)
		writeRulePayload(w, func(buf *bytes.Buffer) error {
			return rules.WriteSimilarities(buf, sorted)
		})
	}
}

// writeRulePayload buffers the rule-file payload before writing so an
// encoding failure can still become a 500 instead of a torn body, and
// stamps the CRC-32C header the coordinator verifies — a payload
// truncated or corrupted in flight is retried, never merged.
func writeRulePayload(w http.ResponseWriter, encode func(*bytes.Buffer) error) {
	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		http.Error(w, "encoding rule payload", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.Header().Set(fleet.PayloadCRCHeader, fleet.PayloadCRC(buf.Bytes()))
	_, _ = w.Write(buf.Bytes())
}

// fleetStatus is the GET /v1/fleet/status payload: the coordinator's
// live view of its fleet — per-node health, breaker position, capacity
// and Retry-After embargo, plus the current hedge delay.
type fleetStatus struct {
	Nodes []fleet.NodeStatus `json:"nodes"`
	// HedgeAfterMs is the delay a straggling dispatch would hedge after
	// right now, in milliseconds (0 = hedging off or no latency sample).
	HedgeAfterMs int64 `json:"hedge_after_ms"`
}

// handleFleetStatus implements GET /v1/fleet/status on a coordinator
// replica.
func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, fleetStatus{
		Nodes:        s.cfg.Fleet.Registry().Status(),
		HedgeAfterMs: int64(s.cfg.Fleet.HedgeDelay() / time.Millisecond),
	})
}

// fleetReady gates a ?fleet=1 mine: the replica must be a configured
// coordinator and the dataset resident with a content address (the
// planner needs the ones counts and stale workers get the replica
// pushed from it).
func (s *Server) fleetReady(w http.ResponseWriter, r *http.Request, d *dataset) bool {
	if s.cfg.Fleet == nil {
		writeErr(w, r, http.StatusBadRequest, "fleet mining is not enabled on this replica (start the coordinator with -fleet-nodes)")
		return false
	}
	if d.m == nil || d.hash == "" {
		writeErr(w, r, http.StatusBadRequest, "fleet mining needs a resident content-addressed dataset on the coordinator")
		return false
	}
	return true
}

// mineImpFleet scatters an implication mine across the fleet and
// gathers the exact single-node rule set.
func (s *Server) mineImpFleet(ctx context.Context, d *dataset, p params) ([]rules.Implication, core.Stats, error) {
	start := time.Now()
	rs, fst, err := s.cfg.Fleet.MineImplications(ctx, s.fleetRef(d), s.fleetParams(p))
	if err != nil {
		return nil, core.Stats{}, err
	}
	_ = fst
	return rs, core.Stats{NumRules: len(rs), Total: time.Since(start)}, nil
}

// mineSimFleet is mineImpFleet for similarity rules.
func (s *Server) mineSimFleet(ctx context.Context, d *dataset, p params) ([]rules.Similarity, core.Stats, error) {
	start := time.Now()
	rs, fst, err := s.cfg.Fleet.MineSimilarities(ctx, s.fleetRef(d), s.fleetParams(p))
	if err != nil {
		return nil, core.Stats{}, err
	}
	_ = fst
	return rs, core.Stats{NumRules: len(rs), Total: time.Since(start)}, nil
}

func (s *Server) fleetRef(d *dataset) fleet.DatasetRef {
	return fleet.DatasetRef{Name: d.info.Name, Hash: d.hash, M: d.m}
}

func (s *Server) fleetParams(p params) fleet.Params {
	return fleet.Params{
		ThresholdPercent: p.threshold, MinSupport: p.minSupport,
		Prefilter: p.prefilter, Workers: p.workers,
	}
}
