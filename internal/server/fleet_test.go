package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dmc/internal/core"
	"dmc/internal/fleet"
	"dmc/internal/matrix"
	"dmc/internal/obs"
	"dmc/internal/rules"
	"dmc/internal/store"
)

// fleetTestMatrix builds a reproducible random dataset with labels, so
// fleet responses exercise the coordinator-side label resolution.
func fleetTestMatrix(t *testing.T, seed int64, rows, cols int) *matrix.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		n := 0
		for c := 0; c < cols; c++ {
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&sb, "item%02d ", c)
				n++
			}
		}
		if n == 0 {
			fmt.Fprintf(&sb, "item%02d ", rng.Intn(cols))
		}
		sb.WriteByte('\n')
	}
	m, err := matrix.ReadBaskets(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fleetCluster is a coordinator server wired over n in-process worker
// servers, each a full *Server with the fleet endpoints mounted.
type fleetCluster struct {
	coord   *httptest.Server
	workers []*httptest.Server
	reg     *fleet.Registry
	obs     *obs.Registry
}

// startFleet boots n workers and a coordinator holding m as "d".
// wrap, when non-nil, decorates each worker's handler (fault
// injection).
func startFleet(t *testing.T, n int, m *matrix.Matrix, wrap func(i int, h http.Handler) http.Handler) *fleetCluster {
	t.Helper()
	fc := &fleetCluster{obs: obs.NewRegistry()}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		ws := NewWith(Config{FleetWorker: true})
		h := http.Handler(ws.Handler())
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		fc.workers = append(fc.workers, ts)
		urls[i] = ts.URL
	}
	reg, err := fleet.NewRegistry(urls, fc.obs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	fc.reg = reg
	cs := NewWith(Config{Fleet: fleet.NewCoordinator(reg, fleet.Options{})})
	cs.Add("d", m)
	fc.coord = httptest.NewServer(cs.Handler())
	t.Cleanup(fc.coord.Close)
	return fc
}

// mineRules fetches a mine response and returns the marshaled rules
// payload — the byte-comparable part (ElapsedMS and Source legitimately
// differ between a fleet and a serial run).
func mineRules(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var mr struct {
		Total int             `json:"total_rules"`
		Rules json.RawMessage `json:"rules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	return mr.Rules
}

// TestFleetMineParity is the heart of the fleet PR: a ?fleet=1 mine
// scattered over 2 or 4 workers renders byte-identically to the same
// request served by a plain single-node server, for both families
// across thresholds.
func TestFleetMineParity(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		m := fleetTestMatrix(t, seed, 50, 18)
		serial := NewWith(Config{})
		serial.Add("d", m)
		ref := httptest.NewServer(serial.Handler())
		t.Cleanup(ref.Close)

		for _, nw := range []int{2, 4} {
			fc := startFleet(t, nw, m, nil)
			for _, family := range []string{"implications", "similarities"} {
				for _, th := range []int{100, 80, 65} {
					q := fmt.Sprintf("/v1/datasets/d/%s?threshold=%d", family, th)
					got := mineRules(t, fc.coord.URL+q+"&fleet=1")
					want := mineRules(t, ref.URL+q)
					if !bytes.Equal(got, want) {
						t.Fatalf("seed %d, %d workers, %s@%d: fleet payload diverges\nfleet:  %s\nserial: %s",
							seed, nw, family, th, got, want)
					}
				}
			}
			if v := fc.obs.CounterVec("dmc_fleet_mines_total", "", "mode").With("imp").Value(); v == 0 {
				t.Fatal("fleet mines not counted")
			}
		}
	}
}

// TestFleetColdWorkers: workers that have never seen the dataset get
// replicas pushed on first contact and the mine still matches.
func TestFleetColdWorkers(t *testing.T) {
	m := fleetTestMatrix(t, 3, 40, 12)
	serial := NewWith(Config{})
	serial.Add("d", m)
	ref := httptest.NewServer(serial.Handler())
	t.Cleanup(ref.Close)

	fc := startFleet(t, 2, m, nil)
	q := "/v1/datasets/d/implications?threshold=75"
	if got, want := mineRules(t, fc.coord.URL+q+"&fleet=1"), mineRules(t, ref.URL+q); !bytes.Equal(got, want) {
		t.Fatalf("cold-worker fleet payload diverges\nfleet:  %s\nserial: %s", got, want)
	}
	if v := fc.obs.Counter("dmc_fleet_dataset_pushes_total", "").Value(); v != 2 {
		t.Fatalf("dataset pushes = %d, want 2 (one per cold worker)", v)
	}
	// Second mine: replicas are warm, no new pushes, cache serves.
	_ = mineRules(t, fc.coord.URL+q+"&fleet=1")
	if v := fc.obs.Counter("dmc_fleet_dataset_pushes_total", "").Value(); v != 2 {
		t.Fatalf("warm workers re-pushed: %d", v)
	}
}

// abortOnce aborts the first matching request through it — the HTTP
// face of a worker dying mid-pass.
type abortOnce struct {
	next  http.Handler
	path  string
	armed atomic.Bool
}

func (a *abortOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == a.path && a.armed.CompareAndSwap(true, false) {
		panic(http.ErrAbortHandler)
	}
	a.next.ServeHTTP(w, r)
}

// TestFleetFaultMatrix kills workers mid-pass in several ways and
// asserts the coordinator requeues and the final rules stay
// byte-identical to the serial reference.
func TestFleetFaultMatrix(t *testing.T) {
	m := fleetTestMatrix(t, 4, 45, 16)
	serial := NewWith(Config{})
	serial.Add("d", m)
	ref := httptest.NewServer(serial.Handler())
	t.Cleanup(ref.Close)
	q := "/v1/datasets/d/similarities?threshold=60"
	want := mineRules(t, ref.URL+q)

	t.Run("worker dies mid-shard", func(t *testing.T) {
		var aborts []*abortOnce
		fc := startFleet(t, 2, m, func(i int, h http.Handler) http.Handler {
			a := &abortOnce{next: h, path: fleet.ShardPath}
			if i == 0 {
				a.armed.Store(true)
			}
			aborts = append(aborts, a)
			return a
		})
		got := mineRules(t, fc.coord.URL+q+"&fleet=1")
		if !bytes.Equal(got, want) {
			t.Fatalf("post-requeue payload diverges\nfleet:  %s\nserial: %s", got, want)
		}
		if v := fc.obs.Counter("dmc_fleet_requeues_total", "").Value(); v == 0 {
			t.Fatal("dead worker did not requeue")
		}
	})

	t.Run("worker gone before scatter", func(t *testing.T) {
		fc := startFleet(t, 2, m, nil)
		fc.workers[1].Close() // node down entirely; probe has not noticed
		got := mineRules(t, fc.coord.URL+q+"&fleet=1")
		if !bytes.Equal(got, want) {
			t.Fatalf("payload diverges with a dead node\nfleet:  %s\nserial: %s", got, want)
		}
		if v := fc.obs.Counter("dmc_fleet_requeues_total", "").Value(); v == 0 {
			t.Fatal("dead node did not requeue")
		}
	})

	t.Run("all workers gone", func(t *testing.T) {
		fc := startFleet(t, 2, m, nil)
		fc.workers[0].Close()
		fc.workers[1].Close()
		resp, err := http.Get(fc.coord.URL + q + "&fleet=1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("fleet mine with no workers: status %d", resp.StatusCode)
		}
	})
}

// TestFleetShutdownLeaks: a cluster that mined, probed and closed must
// return to baseline goroutine and fd counts — pooled transports and
// probe loops all released.
func TestFleetShutdownLeaks(t *testing.T) {
	countFDs := func() int {
		ents, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			return -1
		}
		return len(ents)
	}
	m := fleetTestMatrix(t, 5, 30, 10)

	// Warm-up cycle so lazy runtime helpers don't read as leaks.
	run := func() {
		fc := startFleet(t, 2, m, nil)
		fc.reg.Start(time.Millisecond)
		_ = mineRules(t, fc.coord.URL+"/v1/datasets/d/implications?threshold=80&fleet=1")
		fc.reg.Close()
		fc.coord.Close()
		for _, w := range fc.workers {
			w.Close()
		}
	}
	run()
	runtime.GC()
	baseG, baseFD := runtime.NumGoroutine(), countFDs()

	for i := 0; i < 3; i++ {
		run()
	}
	runtime.GC()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseG && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseG {
		t.Fatalf("goroutines leaked: %d > baseline %d", g, baseG)
	}
	if fd := countFDs(); baseFD >= 0 && fd > baseFD {
		t.Fatalf("fds leaked: %d > baseline %d", fd, baseFD)
	}
}

// TestFleetShardEndpoint drives a worker's shard endpoint directly:
// partial results are cached under shard-suffixed keys and never alias
// the full mine.
func TestFleetShardEndpoint(t *testing.T) {
	m := fleetTestMatrix(t, 6, 40, 12)
	s := NewWith(Config{FleetWorker: true})
	s.Add("d", m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	hash, err := store.ContentHash(m)
	if err != nil {
		t.Fatal(err)
	}

	post := func(task fleet.Task) *http.Response {
		t.Helper()
		body, _ := json.Marshal(task)
		resp, err := http.Post(ts.URL+fleet.ShardPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	task := fleet.Task{Dataset: "d", Hash: hash, Mode: "imp", Threshold: 70, ColLo: 0, ColHi: 5}

	resp := post(task)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard post: status %d", resp.StatusCode)
	}
	shardRules, err := rules.ReadImplications(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The shard holds exactly the full mine's rules with From in [0,5).
	full := core.NaiveImplications(m, core.FromPercent(70))
	var wantShard []rules.Implication
	for _, r := range full {
		if int(r.From) < 5 {
			wantShard = append(wantShard, r)
		}
	}
	rules.SortImplications(wantShard)
	if d := rules.DiffImplications(shardRules, wantShard); d != "" {
		t.Fatal(d)
	}

	// The partial result must not alias the full mine through the cache.
	fullPayload := mineRules(t, ts.URL+"/v1/datasets/d/implications?threshold=70")
	var wire []json.RawMessage
	if err := json.Unmarshal(fullPayload, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire) != len(full) {
		t.Fatalf("full mine after shard mine returned %d rules, want %d (cache aliasing?)", len(wire), len(full))
	}

	// Protocol errors: wrong hash 409, unknown dataset 404, bad range 400.
	for _, tc := range []struct {
		mut  func(*fleet.Task)
		want int
	}{
		{func(tk *fleet.Task) { tk.Hash = "deadbeef" }, http.StatusConflict},
		{func(tk *fleet.Task) { tk.Dataset = "nope" }, http.StatusNotFound},
		{func(tk *fleet.Task) { tk.ColHi = 99 }, http.StatusBadRequest},
		{func(tk *fleet.Task) { tk.Mode = "imp"; tk.Prefilter = true }, http.StatusBadRequest},
	} {
		bad := task
		tc.mut(&bad)
		resp := post(bad)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("shard %+v: status %d, want %d", bad, resp.StatusCode, tc.want)
		}
	}
}

// TestFleetShardPayloadCRC: every shard payload carries the CRC-32C
// header matching its body — the end-to-end integrity check that turns
// in-flight truncation or corruption into a retry instead of a silent
// bad merge.
func TestFleetShardPayloadCRC(t *testing.T) {
	m := fleetTestMatrix(t, 8, 30, 10)
	s := NewWith(Config{FleetWorker: true})
	s.Add("d", m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	hash, err := store.ContentHash(m)
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(fleet.Task{Dataset: "d", Hash: hash, Mode: "imp", Threshold: 70, ColLo: 0, ColHi: 10})
	resp, err := http.Post(ts.URL+fleet.ShardPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard post: status %d", resp.StatusCode)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Header.Get(fleet.PayloadCRCHeader)
	if got == "" {
		t.Fatalf("shard response has no %s header", fleet.PayloadCRCHeader)
	}
	if want := fleet.PayloadCRC(payload); got != want {
		t.Fatalf("%s = %q, body CRC %q", fleet.PayloadCRCHeader, got, want)
	}
	if cl := resp.ContentLength; cl != int64(len(payload)) {
		t.Fatalf("Content-Length %d, body %d bytes", cl, len(payload))
	}
}

// TestFleetStatusEndpoint: a coordinator exposes its live fleet view —
// per-node health and breaker position plus the hedge delay — and
// non-coordinator replicas do not mount the route.
func TestFleetStatusEndpoint(t *testing.T) {
	m := fleetTestMatrix(t, 9, 30, 10)
	fc := startFleet(t, 2, m, nil)

	var st struct {
		Nodes []fleet.NodeStatus `json:"nodes"`
		Hedge int64              `json:"hedge_after_ms"`
	}
	getJSON(t, fc.coord.URL+"/v1/fleet/status", http.StatusOK, &st)
	if len(st.Nodes) != 2 {
		t.Fatalf("status nodes = %d, want 2", len(st.Nodes))
	}
	for _, n := range st.Nodes {
		if n.Breaker != "closed" || !n.Healthy {
			t.Fatalf("fresh fleet node %+v, want healthy + closed breaker", n)
		}
	}

	plain := New()
	ts := httptest.NewServer(plain.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/v1/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status on non-coordinator: %d, want 404", resp.StatusCode)
	}
}

// TestFleetParamGating: ?fleet=1 on a server with no coordinator is a
// clean 400, and fleet worker endpoints are absent unless enabled.
func TestFleetParamGating(t *testing.T) {
	s := New()
	s.Add("d", fleetTestMatrix(t, 7, 10, 6))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/datasets/d/implications?threshold=80&fleet=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fleet=1 without coordinator: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+fleet.ShardPath, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("shard endpoint on non-worker: status %d, want 404", resp.StatusCode)
	}

	// Info is always mounted (any replica can be probed).
	var info fleet.Info
	getJSON(t, ts.URL+fleet.InfoPath, http.StatusOK, &info)
	if info.Status != "ready" || info.Datasets != 1 {
		t.Fatalf("info = %+v", info)
	}
}

// TestShardParamsKey: the cache key suffix keeps sharded partials and
// full mines apart, and legacy keys are untouched.
func TestShardParamsKey(t *testing.T) {
	full := params{threshold: 80, minSupport: 2}
	if got := full.paramsKey(); got != "t=80 ms=2" {
		t.Fatalf("legacy key changed: %q", got)
	}
	sharded := full
	sharded.shard = &core.ShardRange{Lo: 3, Hi: 9}
	if got := sharded.paramsKey(); got != "t=80 ms=2 cols=3-9" {
		t.Fatalf("shard key = %q", got)
	}
	if full.paramsKey() == sharded.paramsKey() {
		t.Fatal("shard key aliases full key")
	}
}

// TestRetryAfterOn503: every 503 the server issues carries Retry-After
// so fleet (and any other) retry loops can back off uniformly.
func TestRetryAfterOn503(t *testing.T) {
	s := New()
	s.SetReady(false)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while loading: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("loading 503 has no Retry-After")
	}
}
