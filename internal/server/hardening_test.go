package server

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"dmc/internal/core"
	"dmc/internal/matrix"
	"dmc/internal/rules"
)

func doPut(t *testing.T, base, name, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/datasets/"+url.PathEscape(name), strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestPutRejectsInvalidNames(t *testing.T) {
	ts := testServer(t)
	for _, name := range []string{".hidden", "a..b", "sp ace", "tab\tname", "-lead", strings.Repeat("x", 200)} {
		if resp := doPut(t, ts.URL, name, "x y\n"); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("PUT name %q: status %d, want 400", name, resp.StatusCode)
		}
	}
	// Sane names still work.
	for _, name := range []string{"ok", "A-1_2.basket", "0start"} {
		if resp := doPut(t, ts.URL, name, "x y\nx z\n"); resp.StatusCode != http.StatusCreated {
			t.Errorf("PUT name %q: status %d, want 201", name, resp.StatusCode)
		}
	}
}

func TestPutTooLargeIs413(t *testing.T) {
	s := NewWith(Config{MaxUploadBytes: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	body := strings.Repeat("word1 word2 word3\n", 32) // way past 64 bytes
	if resp := doPut(t, ts.URL, "big", body); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT: status %d, want 413", resp.StatusCode)
	}
	// Under the cap is fine.
	if resp := doPut(t, ts.URL, "small", "x y\n"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("small PUT: status %d, want 201", resp.StatusCode)
	}
}

func TestUnknownDatasetIs404(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{
		"/v1/datasets/nope", "/v1/datasets/nope/implications",
		"/v1/datasets/nope/similarities", "/v1/datasets/nope/expand?keyword=x",
	} {
		getJSON(t, ts.URL+path, http.StatusNotFound, nil)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	// Mine once so the mining series have data.
	getJSON(t, ts.URL+"/v1/datasets/baskets/implications?threshold=80", http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"dmc_http_requests_total{",
		`endpoint="/v1/datasets/{name}/implications"`,
		"dmc_http_request_seconds_bucket{",
		`dmc_mine_phase_seconds_bucket{`,
		`pipeline="imp"`,
		"dmc_mine_runs_total{",
		"dmc_stream_passes_total",
		"dmc_stream_spilled_rows_total",
		"dmc_datasets_loaded",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/v1/metrics missing %q", want)
		}
	}

	// JSON form parses.
	resp2, err := http.Get(ts.URL + "/v1/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var fams []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&fams); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if len(fams) == 0 {
		t.Fatal("metrics JSON empty")
	}
}

func TestRequestIDHeader(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no X-Request-ID on response")
	}
}

func TestPprofMounting(t *testing.T) {
	on := httptest.NewServer(NewWith(Config{EnablePprof: true}).Handler())
	t.Cleanup(on.Close)
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: status %d, want 200", resp.StatusCode)
	}

	off := httptest.NewServer(New().Handler())
	t.Cleanup(off.Close)
	resp, err = http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: status %d, want 404", resp.StatusCode)
	}
}

// slowServer returns a server whose imp miner blocks for d before
// returning one dummy rule.
func slowServer(t *testing.T, cfg Config, d time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	s := NewWith(cfg)
	m, err := matrix.ReadBaskets(strings.NewReader("a b\na b\n"))
	if err != nil {
		t.Fatal(err)
	}
	s.Add("slow", m)
	s.mineImp = func(*matrix.Matrix, core.Threshold, core.Options, int) ([]rules.Implication, core.Stats, error) {
		time.Sleep(d)
		return []rules.Implication{{From: 0, To: 1, Hits: 2, Ones: 2}}, core.Stats{NumRules: 1}, nil
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestMiningDeadline503(t *testing.T) {
	s, ts := slowServer(t, Config{RequestTimeout: 30 * time.Millisecond}, 2*time.Second)
	getJSON(t, ts.URL+"/v1/datasets/slow/implications", http.StatusServiceUnavailable, nil)
	if got := s.metrics.timeouts.Value(); got < 1 {
		t.Fatalf("timeout counter = %d, want >= 1", got)
	}
}

func TestMiningConcurrencyLimit(t *testing.T) {
	_, ts := slowServer(t, Config{RequestTimeout: 150 * time.Millisecond, MaxConcurrentMines: 1}, 2*time.Second)

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/datasets/slow/implications")
			if err != nil {
				codes[i] = -1
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
		time.Sleep(40 * time.Millisecond) // ensure request 0 holds the slot first
	}
	wg.Wait()
	// The slot holder times out (503); the queued request never gets the
	// slot within its deadline (429).
	if codes[0] != http.StatusServiceUnavailable {
		t.Errorf("first request: status %d, want 503", codes[0])
	}
	if codes[1] != http.StatusTooManyRequests {
		t.Errorf("queued request: status %d, want 429", codes[1])
	}
}

func TestGracefulShutdownDrainsMining(t *testing.T) {
	s, _ := slowServer(t, Config{ShutdownGrace: 5 * time.Second}, 250*time.Millisecond)
	ln, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	type reply struct {
		status int
		resp   MineResponse[ImplicationWire]
		err    error
	}
	got := make(chan reply, 1)
	go func() {
		var r reply
		resp, err := http.Get(base + "/v1/datasets/slow/implications")
		if err != nil {
			r.err = err
		} else {
			r.status = resp.StatusCode
			r.err = json.NewDecoder(resp.Body).Decode(&r.resp)
			resp.Body.Close()
		}
		got <- r
	}()

	time.Sleep(75 * time.Millisecond) // request is now mid-mine
	cancel()                          // begin graceful shutdown

	select {
	case r := <-got:
		if r.err != nil || r.status != http.StatusOK || r.resp.Total != 1 {
			t.Fatalf("in-flight request not drained cleanly: %+v", r)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v, want nil after clean drain", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Run did not return after shutdown")
	}
	// The listener is closed: new connections fail.
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}
