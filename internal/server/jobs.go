// Async job endpoints: the crash-safe /v1/jobs API over the
// internal/jobs manager. A POST validates the mine against the tenant's
// dataset catalog, journals it durably, and returns 202 with the job id
// — the mine itself runs on the job worker pool, streaming progress
// over SSE, committing its result as a content-addressed blob, and
// surviving a server SIGKILL by resuming from its streaming checkpoint
// at the next boot.
//
//	POST /v1/jobs                  {"dataset","pipeline","threshold",...} → 202 + job
//	GET  /v1/jobs                  the tenant's jobs, newest first
//	GET  /v1/jobs/{id}             poll one job
//	GET  /v1/jobs/{id}/result      the mined rules (text/plain, dmcrules format)
//	GET  /v1/jobs/{id}/events      SSE progress: state, phase, stats frames
//	DEL  /v1/jobs/{id}             cancel (queued or running)
//
// Tenancy: every request is scoped by X-DMC-Tenant (default tenant when
// absent); another tenant's jobs are indistinguishable from absent
// ones. Config.TenantQuota bounds datasets, bytes and concurrent jobs
// per tenant; breaches answer 429 with Retry-After derived from the
// tenant's own EWMA job cost.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dmc/internal/core"
	"dmc/internal/jobs"
	"dmc/internal/rules"
	"dmc/internal/stream"
)

// OpenJobs enables the async job subsystem at dir: the JOBS journal is
// replayed (incomplete jobs re-admitted, orphaned scratch swept) and
// the worker pool started with this server as the mine runner. Call
// after LoadStore/LoadDir so re-admitted jobs find their datasets, and
// before SetReady(true). Close the subsystem with CloseJobs.
func (s *Server) OpenJobs(dir string) error {
	if s.jm != nil {
		return errors.New("server: jobs already open")
	}
	m, err := jobs.Open(dir, jobs.Options{
		Run:      s.runJob,
		Workers:  s.cfg.JobWorkers,
		Registry: s.cfg.registry(),
		Weights:  s.cfg.TenantWeights,
	})
	if err != nil {
		return err
	}
	s.jm = m
	m.Start()
	return nil
}

// CloseJobs stops the job worker pool (interrupted jobs stay journaled
// as running and resume at the next OpenJobs) and closes the journal.
// A no-op without OpenJobs.
func (s *Server) CloseJobs() error {
	if s.jm == nil {
		return nil
	}
	return s.jm.Close()
}

// Jobs exposes the manager to the embedding binary (tests, operator
// tooling). Nil until OpenJobs.
func (s *Server) Jobs() *jobs.Manager { return s.jm }

// jobsEnabled answers the common guard: 503 when the subsystem is not
// configured.
func (s *Server) jobsEnabled(w http.ResponseWriter, r *http.Request) bool {
	if s.jm == nil {
		writeErr(w, r, http.StatusServiceUnavailable, "async jobs are not enabled on this server (start dmcserve with -jobs-dir)")
		return false
	}
	return true
}

// checkDatasetQuota rules on adding (or replacing) a dataset of
// estimated size est under tenant's quota, counting the breach on
// dmc_tenant_quota_rejections_total. Replacing the tenant's own dataset
// frees its old footprint first.
func (s *Server) checkDatasetQuota(tenant, name string, est int64) *shedInfo {
	q := s.cfg.TenantQuota
	if q.MaxDatasets <= 0 && q.MaxBytes <= 0 {
		return nil
	}
	n, used := s.tenantUsage(tenant)
	if old, ok := s.getFor(tenant, name); ok {
		n--
		used -= old.bytes
	}
	switch {
	case q.MaxDatasets > 0 && n >= q.MaxDatasets:
		s.metrics.tenantRejects.With(tenant, "datasets").Inc()
		return &shedInfo{
			status: http.StatusTooManyRequests, reason: shedTenantQuota,
			retryAfter: s.tenantRetryAfter(tenant),
			msg:        fmt.Sprintf("tenant %q is at its dataset quota (%d); delete one first", tenant, q.MaxDatasets),
		}
	case q.MaxBytes > 0 && used+est > q.MaxBytes:
		s.metrics.tenantRejects.With(tenant, "bytes").Inc()
		return &shedInfo{
			status: http.StatusTooManyRequests, reason: shedTenantQuota,
			retryAfter: s.tenantRetryAfter(tenant),
			msg:        fmt.Sprintf("tenant %q would exceed its byte quota (%d used + %d requested > %d)", tenant, used, est, q.MaxBytes),
		}
	}
	return nil
}

// tenantRetryAfter derives a Retry-After for tenant-quota sheds from
// the tenant's own EWMA job cost — the best available estimate of when
// its backlog drains. Falls back to the 1s floor for tenants with no
// job history (or no job subsystem).
func (s *Server) tenantRetryAfter(tenant string) time.Duration {
	if s.jm == nil {
		return retryAfter(0)
	}
	return retryAfter(s.jm.EstimateCost(tenant))
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	if s.draining.Load() {
		s.writeShed(w, r, &shedInfo{
			status: http.StatusServiceUnavailable, reason: shedDraining,
			retryAfter: retryAfter(durOr(s.cfg.ShutdownGrace, 30*time.Second)),
			msg:        "server is draining for shutdown; submit against another replica",
		})
		return
	}
	var p jobs.Params
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		writeErr(w, r, http.StatusBadRequest, "parsing job request: %v", err)
		return
	}
	d, ok := s.getFor(tenant, p.Dataset)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "no dataset %q", p.Dataset)
		return
	}
	if p.Workers < 0 || p.Workers > maxWorkers {
		writeErr(w, r, http.StatusBadRequest, "workers %d outside [0,%d] (0 = one per CPU)", p.Workers, maxWorkers)
		return
	}
	if p.MinSupport < 0 {
		writeErr(w, r, http.StatusBadRequest, "minsupport must be >= 0")
		return
	}
	if p.Prefilter {
		if p.Pipeline != "sim" {
			writeErr(w, r, http.StatusBadRequest, "prefilter applies to similarity mining only")
			return
		}
		if d.m == nil {
			writeErr(w, r, http.StatusBadRequest, "dataset %q is file-backed (streamed); prefilter needs a resident dataset", p.Dataset)
			return
		}
	}
	if q := s.cfg.TenantQuota; q.MaxJobs > 0 && s.jm.Active(tenant) >= q.MaxJobs {
		s.metrics.tenantRejects.With(tenant, "jobs").Inc()
		s.writeShed(w, r, &shedInfo{
			status: http.StatusTooManyRequests, reason: shedTenantQuota,
			retryAfter: s.tenantRetryAfter(tenant),
			msg:        fmt.Sprintf("tenant %q is at its concurrent job quota (%d); wait for a job to finish or cancel one", tenant, q.MaxJobs),
		})
		return
	}
	j, err := s.jm.Submit(tenant, p)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrClosed), errors.Is(err, jobs.ErrCorrupt):
			writeErr(w, r, http.StatusServiceUnavailable, "accepting job: %v", err)
		default:
			writeErr(w, r, http.StatusBadRequest, "accepting job: %v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.jm.List(tenant))
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	j, err := s.jm.Get(tenant, r.PathValue("id"))
	if err != nil {
		writeErr(w, r, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	j, err := s.jm.Cancel(tenant, r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeErr(w, r, http.StatusNotFound, "no job %q", r.PathValue("id"))
	case errors.Is(err, jobs.ErrTerminal):
		writeErr(w, r, http.StatusConflict, "job %s already finished (%s)", j.ID, j.State)
	case err != nil:
		writeErr(w, r, http.StatusInternalServerError, "cancelling job: %v", err)
	default:
		writeJSON(w, http.StatusAccepted, j)
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	payload, err := s.jm.Result(tenant, id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeErr(w, r, http.StatusNotFound, "no job %q", id)
	case errors.Is(err, jobs.ErrNoResult):
		writeErr(w, r, http.StatusConflict, "%v", err)
	case err != nil:
		writeErr(w, r, http.StatusInternalServerError, "reading job result: %v", err)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(payload)
	}
}

// handleJobEvents streams a job's progress as Server-Sent Events: one
// frame per state transition, pipeline phase and stats summary, ending
// when the job reaches a terminal state. The subscription's buffer is
// bounded — a client that stops reading is dropped (the stream just
// ends) rather than allowed to backpressure the mine; a client that
// disconnects mid-stream tears the subscription down without leaking
// the handler goroutine.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w, r) {
		return
	}
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	sub, err := s.jm.Subscribe(tenant, id)
	if err != nil {
		writeErr(w, r, http.StatusNotFound, "no job %q", id)
		return
	}
	defer sub.Cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, r, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-sub.C:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// runJob is the jobs.Runner this server injects into its manager: it
// executes one mine session against the tenant's dataset and returns
// the canonical dmcrules payload. Streamed datasets wire the job's
// scratch directory into the out-of-core engine's checkpoint machinery,
// which is what makes a SIGKILL'd session resumable; resident mines
// reuse the synchronous path's degrade ladder (brownout, budget
// overflow → out-of-core). The payload is rendered deterministically —
// canonical sort, fixed text format — so a resumed session is
// byte-identical to an uninterrupted one.
func (s *Server) runJob(ctx context.Context, j jobs.Job, env jobs.RunEnv) ([]byte, int, error) {
	d, ok := s.getFor(j.Tenant, j.Params.Dataset)
	if !ok {
		return nil, 0, fmt.Errorf("dataset %q no longer exists", j.Params.Dataset)
	}
	opts := core.Options{
		MinSupport:     j.Params.MinSupport,
		MemBudgetBytes: s.cfg.MemBudgetBytes,
		Ctx:            ctx,
		Hooks:          s.jobHooks(j, env),
	}
	thr := core.FromPercent(j.Params.Threshold)
	var payload bytes.Buffer
	var nrules int
	switch j.Params.Pipeline {
	case "imp":
		var rs []rules.Implication
		var st core.Stats
		var err error
		if d.m == nil {
			rs, st, err = s.mineImpFile(d.path, thr, opts, s.jobStreamCfg(j, env, ctx))
		} else {
			rs, st, err = s.mineImpMem(d.m, thr, opts, j.Params.Workers)
		}
		if err != nil {
			return nil, 0, err
		}
		s.recordMine("imp", st)
		rules.SortImplications(rs)
		if err := rules.WriteImplications(&payload, rs); err != nil {
			return nil, 0, err
		}
		nrules = len(rs)
	case "sim":
		if j.Params.Prefilter {
			opts.Prefilter = &core.PrefilterOptions{}
		}
		var rs []rules.Similarity
		var st core.Stats
		var err error
		if d.m == nil {
			rs, st, err = s.mineSimFile(d.path, thr, opts, s.jobStreamCfg(j, env, ctx))
		} else {
			rs, st, err = s.mineSimMem(d.m, thr, opts, j.Params.Workers)
		}
		if err != nil {
			return nil, 0, err
		}
		s.recordMine("sim", st)
		rules.SortSimilarities(rs)
		if err := rules.WriteSimilarities(&payload, rs); err != nil {
			return nil, 0, err
		}
		nrules = len(rs)
	default:
		return nil, 0, fmt.Errorf("unknown pipeline %q", j.Params.Pipeline)
	}
	return payload.Bytes(), nrules, nil
}

// jobStreamCfg is streamCfg plus the job's checkpoint wiring: the
// partition spills into the job's scratch directory and a later session
// resumes it instead of re-reading the input.
func (s *Server) jobStreamCfg(j jobs.Job, env jobs.RunEnv, ctx context.Context) stream.Config {
	cfg := s.streamCfg(j.Params.Workers, ctx)
	cfg.CheckpointDir = env.CheckpointDir
	cfg.Resume = env.Resume
	cfg.OnResume = env.OnResume
	return cfg
}

// jobHooks forwards the run's phase/stats hooks both to the server's
// metrics (as the synchronous path does) and to the job's SSE feed.
func (s *Server) jobHooks(j jobs.Job, env jobs.RunEnv) *core.Hooks {
	base := s.hooks
	return &core.Hooks{
		OnPhase: func(pipeline, phase string, d time.Duration) {
			base.OnPhase(pipeline, phase, d)
			env.Publish(jobs.Event{
				Type: jobs.EventPhase, Pipeline: pipeline, Phase: phase,
				ElapsedMS: d.Milliseconds(),
			})
		},
		OnBitmapSwitch: base.OnBitmapSwitch,
		OnStats: func(pipeline string, st core.Stats) {
			env.Publish(jobs.Event{
				Type: jobs.EventStats, Pipeline: pipeline,
				ElapsedMS: st.Total.Milliseconds(), Rules: st.NumRules,
			})
		},
	}
}
