package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dmc/internal/core"
	"dmc/internal/jobs"
	"dmc/internal/matrix"
	"dmc/internal/rules"
)

// jobsServer builds a server with the async job subsystem open on a
// temp journal directory and one resident dataset named "baskets".
func jobsServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewWith(cfg)
	m, err := matrix.ReadBaskets(strings.NewReader(
		"bread butter jam\nbread butter\nbread butter coffee\nbread butter jam\nbread coffee\ncoffee tea\nbread butter tea\njam bread butter\ncoffee\nbread butter jam coffee\n"))
	if err != nil {
		t.Fatal(err)
	}
	s.Add("baskets", m)
	if err := s.OpenJobs(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.CloseJobs() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doJSON issues one request with an optional tenant header and decodes
// the JSON response body into v (when non-nil).
func doJSON(t *testing.T, method, url, tenant, body string, wantStatus int, v any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d\n%s", method, url, resp.StatusCode, wantStatus, raw)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, raw)
		}
	}
	return resp
}

// waitJobState polls GET /v1/jobs/{id} until the job reaches want.
func waitJobState(t *testing.T, base, tenant, id string, want jobs.State) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var j jobs.Job
	for time.Now().Before(deadline) {
		doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, tenant, "", http.StatusOK, &j)
		if j.State == want {
			return j
		}
		if j.State.Terminal() && j.State != want {
			t.Fatalf("job %s reached %s (err=%q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (last: %s)", id, want, j.State)
	return j
}

func TestJobsDisabled503(t *testing.T) {
	ts := testServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", `{"dataset":"baskets","pipeline":"imp","threshold":80}`,
		http.StatusServiceUnavailable, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "", "", http.StatusServiceUnavailable, nil)
}

// TestJobLifecycleHTTP drives the full async path over the wire: submit
// returns 202 with a Location, the job runs to done, and the result
// payload is the same canonical rule set the synchronous endpoint
// derives.
func TestJobLifecycleHTTP(t *testing.T) {
	_, ts := jobsServer(t, Config{})
	var j jobs.Job
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "",
		`{"dataset":"baskets","pipeline":"imp","threshold":80}`, http.StatusAccepted, &j)
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+j.ID {
		t.Fatalf("Location = %q, want /v1/jobs/%s", loc, j.ID)
	}
	done := waitJobState(t, ts.URL, "", j.ID, jobs.StateDone)
	if done.Rules == 0 || done.Result == "" {
		t.Fatalf("done job = %+v", done)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/result", nil)
	rr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	payload, _ := io.ReadAll(rr.Body)
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d\n%s", rr.StatusCode, payload)
	}
	rs, err := rules.ReadImplications(bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("result payload unparseable: %v", err)
	}
	if len(rs) != done.Rules {
		t.Fatalf("payload holds %d rules, job reported %d", len(rs), done.Rules)
	}

	// The async answer matches the synchronous endpoint's rule count.
	var sync MineResponse[ImplicationWire]
	getJSON(t, ts.URL+"/v1/datasets/baskets/implications?threshold=80", http.StatusOK, &sync)
	if sync.Total != done.Rules {
		t.Fatalf("async mined %d rules, sync mined %d", done.Rules, sync.Total)
	}

	var list []jobs.Job
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "", "", http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != j.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestJobSubmitValidationHTTP(t *testing.T) {
	_, ts := jobsServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"unknown dataset", `{"dataset":"nope","pipeline":"imp","threshold":80}`, http.StatusNotFound},
		{"bad pipeline", `{"dataset":"baskets","pipeline":"magic","threshold":80}`, http.StatusBadRequest},
		{"threshold over 100", `{"dataset":"baskets","pipeline":"imp","threshold":180}`, http.StatusBadRequest},
		{"negative minsupport", `{"dataset":"baskets","pipeline":"imp","threshold":80,"minsupport":-1}`, http.StatusBadRequest},
		{"workers out of range", `{"dataset":"baskets","pipeline":"imp","threshold":80,"workers":100000}`, http.StatusBadRequest},
		{"prefilter on imp", `{"dataset":"baskets","pipeline":"imp","threshold":80,"prefilter":true}`, http.StatusBadRequest},
		{"unknown field", `{"dataset":"baskets","pipeline":"imp","threshold":80,"bogus":1}`, http.StatusBadRequest},
		{"not json", `threshold=80`, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", tc.body, tc.status, nil)
		})
	}
}

// slowJobsServer wires a mine that blocks for d (or until cancelled)
// under the job subsystem.
func slowJobsServer(t *testing.T, cfg Config, d time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := jobsServer(t, cfg)
	s.mineImp = func(_ *matrix.Matrix, _ core.Threshold, o core.Options, _ int) ([]rules.Implication, core.Stats, error) {
		select {
		case <-time.After(d):
		case <-o.Ctx.Done():
			return nil, core.Stats{}, o.Ctx.Err()
		}
		return []rules.Implication{{From: 0, To: 1, Hits: 2, Ones: 2}}, core.Stats{NumRules: 1}, nil
	}
	return s, ts
}

func TestJobCancelHTTP(t *testing.T) {
	_, ts := slowJobsServer(t, Config{}, time.Minute)
	var j jobs.Job
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "",
		`{"dataset":"baskets","pipeline":"imp","threshold":80}`, http.StatusAccepted, &j)
	waitJobState(t, ts.URL, "", j.ID, jobs.StateRunning)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, "", "", http.StatusAccepted, nil)
	waitJobState(t, ts.URL, "", j.ID, jobs.StateCancelled)
	// Cancelling a finished job conflicts; its result never existed.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, "", "", http.StatusConflict, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/result", "", "", http.StatusConflict, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/nope", "", "", http.StatusNotFound, nil)
}

// TestJobTenantIsolationHTTP: jobs are invisible across the tenant
// header — gets, cancels and lists all answer as if the job never
// existed.
func TestJobTenantIsolationHTTP(t *testing.T) {
	_, ts := jobsServer(t, Config{})
	doJSON(t, http.MethodPut, ts.URL+"/v1/datasets/mine", "alice", "x y\nx y\n", http.StatusCreated, nil)
	var j jobs.Job
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "alice",
		`{"dataset":"mine","pipeline":"imp","threshold":80}`, http.StatusAccepted, &j)
	if j.Tenant != "alice" {
		t.Fatalf("job tenant = %q", j.Tenant)
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID, "bob", "", http.StatusNotFound, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, "bob", "", http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/events", "bob", "", http.StatusNotFound, nil)
	var list []jobs.Job
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "bob", "", http.StatusOK, &list)
	if len(list) != 0 {
		t.Fatalf("bob sees alice's jobs: %+v", list)
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "alice", "", http.StatusOK, &list)
	if len(list) != 1 {
		t.Fatalf("alice's list = %+v", list)
	}
	// An invalid tenant name is a 400, not a silent default.
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "../escape", "", http.StatusBadRequest, nil)
}

// TestJobEventsSSE reads the progress stream end to end: frames arrive
// in SSE format with increasing ids and the stream closes itself after
// the terminal state frame.
func TestJobEventsSSE(t *testing.T) {
	_, ts := jobsServer(t, Config{})
	var j jobs.Job
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "",
		`{"dataset":"baskets","pipeline":"imp","threshold":80}`, http.StatusAccepted, &j)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body) // returns when the job completes
	if err != nil {
		t.Fatal(err)
	}
	frames := strings.Split(strings.TrimSpace(string(raw)), "\n\n")
	if len(frames) == 0 {
		t.Fatal("no SSE frames")
	}
	last := frames[len(frames)-1]
	if !strings.Contains(last, "event: state") || !strings.Contains(last, `"state":"done"`) {
		t.Fatalf("last frame is not the terminal state:\n%s", last)
	}
	for _, f := range frames {
		if !strings.Contains(f, "id: ") || !strings.Contains(f, "data: ") {
			t.Fatalf("malformed SSE frame:\n%s", f)
		}
	}
}

// TestSSESlowReaderDropped: a subscriber that never reads must not
// backpressure the mine. The hub's per-subscriber buffer is bounded and
// publishes are non-blocking, so the job finishes on time even with a
// wedged SSE client holding the stream open.
func TestSSESlowReaderDropped(t *testing.T) {
	s, ts := jobsServer(t, Config{})
	// A mine that floods the hub with far more phase events than any
	// subscriber buffer holds.
	s.mineImp = func(_ *matrix.Matrix, _ core.Threshold, o core.Options, _ int) ([]rules.Implication, core.Stats, error) {
		for i := 0; i < 500; i++ {
			o.Hooks.OnPhase("imp", fmt.Sprintf("phase-%d", i), time.Millisecond)
		}
		return []rules.Implication{{From: 0, To: 1, Hits: 2, Ones: 2}}, core.Stats{NumRules: 1}, nil
	}
	var j jobs.Job
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "",
		`{"dataset":"baskets","pipeline":"imp","threshold":80}`, http.StatusAccepted, &j)

	// Open the stream and stop reading immediately: the response body is
	// never drained, so the handler's writes back up into the kernel
	// buffers while the hub keeps dropping what the subscriber can't take.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	if done := waitJobState(t, ts.URL, "", j.ID, jobs.StateDone); done.Rules != 1 {
		t.Fatalf("job wedged behind a slow SSE reader: %+v", done)
	}
}

// TestSSEDisconnectNoLeak: clients that vanish mid-stream — before the
// job finishes — must tear down their handler goroutines and sockets.
// Goroutine and fd counts return to baseline once the clients are gone.
func TestSSEDisconnectNoLeak(t *testing.T) {
	_, ts := slowJobsServer(t, Config{}, time.Minute)
	var j jobs.Job
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "",
		`{"dataset":"baskets","pipeline":"imp","threshold":80}`, http.StatusAccepted, &j)
	waitJobState(t, ts.URL, "", j.ID, jobs.StateRunning)

	runtime.GC()
	baseG := runtime.NumGoroutine()

	for i := 0; i < 8; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		// Read the first frame so the handler is mid-stream, then vanish.
		buf := make([]byte, 1)
		resp.Body.Read(buf)
		resp.Body.Close()
	}
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseG && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseG+2 {
		buf := make([]byte, 1<<20)
		t.Fatalf("SSE handler goroutines leaked: %d -> %d\n%s",
			baseG, got, buf[:runtime.Stack(buf, true)])
	}
	// The job is still running and cancellable — the subsystem outlived
	// its misbehaving clients.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, "", "", http.StatusAccepted, nil)
	waitJobState(t, ts.URL, "", j.ID, jobs.StateCancelled)
}

// TestTenantJobQuota: MaxJobs bounds queued+running jobs per tenant;
// the breach answers 429 with a Retry-After and counts on
// dmc_tenant_quota_rejections_total, and another tenant is unaffected.
func TestTenantJobQuota(t *testing.T) {
	s, ts := slowJobsServer(t, Config{TenantQuota: TenantQuota{MaxJobs: 1}}, time.Minute)
	doJSON(t, http.MethodPut, ts.URL+"/v1/datasets/mine", "alice", "x y\nx y\n", http.StatusCreated, nil)
	doJSON(t, http.MethodPut, ts.URL+"/v1/datasets/yours", "bob", "x y\nx y\n", http.StatusCreated, nil)
	var j jobs.Job
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "alice",
		`{"dataset":"mine","pipeline":"imp","threshold":80}`, http.StatusAccepted, &j)
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "alice",
		`{"dataset":"mine","pipeline":"imp","threshold":80}`, http.StatusTooManyRequests, nil)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota shed has no Retry-After")
	}
	if got := s.metrics.tenantRejects.With("alice", "jobs").Value(); got != 1 {
		t.Fatalf("dmc_tenant_quota_rejections_total{alice,jobs} = %d, want 1", got)
	}
	if got := s.metrics.shed.With(shedTenantQuota).Value(); got != 1 {
		t.Fatalf("dmc_shed_total{tenant_quota} = %d, want 1", got)
	}
	// Bob's quota is his own.
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "bob",
		`{"dataset":"yours","pipeline":"imp","threshold":80}`, http.StatusAccepted, nil)
	// Cancelling alice's job frees her slot.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, "alice", "", http.StatusAccepted, nil)
	waitJobState(t, ts.URL, "alice", j.ID, jobs.StateCancelled)
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "alice",
		`{"dataset":"mine","pipeline":"imp","threshold":80}`, http.StatusAccepted, nil)
}

// TestTenantDatasetQuota: MaxDatasets and MaxBytes bound each tenant's
// catalog; replacing your own dataset stays within quota, a foreign
// name is taken (409), and breaches answer 429.
func TestTenantDatasetQuota(t *testing.T) {
	s, ts := jobsServer(t, Config{TenantQuota: TenantQuota{MaxDatasets: 1}})
	doJSON(t, http.MethodPut, ts.URL+"/v1/datasets/a1", "alice", "x y\nx y\n", http.StatusCreated, nil)
	resp := doJSON(t, http.MethodPut, ts.URL+"/v1/datasets/a2", "alice", "x y\nx y\n", http.StatusTooManyRequests, nil)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("dataset-quota shed has no Retry-After")
	}
	if got := s.metrics.tenantRejects.With("alice", "datasets").Value(); got != 1 {
		t.Fatalf("rejections{alice,datasets} = %d, want 1", got)
	}
	// Replacing the already-owned name is not a new dataset.
	doJSON(t, http.MethodPut, ts.URL+"/v1/datasets/a1", "alice", "x y z\nx y\n", http.StatusCreated, nil)
	// Bob has his own allowance but cannot take alice's name.
	doJSON(t, http.MethodPut, ts.URL+"/v1/datasets/b1", "bob", "x y\nx y\n", http.StatusCreated, nil)
	doJSON(t, http.MethodPut, ts.URL+"/v1/datasets/a1", "bob", "x y\nx y\n", http.StatusConflict, nil)
	// Foreign datasets are invisible, not forbidden.
	doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/a1", "bob", "", http.StatusNotFound, nil)
	// The default tenant ("baskets" from setup) is yet another namespace.
	var list []DatasetInfo
	doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", "alice", "", http.StatusOK, &list)
	if len(list) != 1 || list[0].Name != "a1" {
		t.Fatalf("alice's catalog = %+v", list)
	}
}

func TestTenantByteQuota(t *testing.T) {
	s, ts := jobsServer(t, Config{TenantQuota: TenantQuota{MaxBytes: 1 << 10}})
	big := strings.Repeat("item0 item1 item2 item3 item4 item5 item6 item7\n", 400)
	doJSON(t, http.MethodPut, ts.URL+"/v1/datasets/big", "alice", big, http.StatusTooManyRequests, nil)
	if got := s.metrics.tenantRejects.With("alice", "bytes").Value(); got != 1 {
		t.Fatalf("rejections{alice,bytes} = %d, want 1", got)
	}
	// A small dataset fits.
	doJSON(t, http.MethodPut, ts.URL+"/v1/datasets/small", "alice", "x y\nx y\n", http.StatusCreated, nil)
}

// TestShedTaxonomyRetryAfter is the table over every shed reason: each
// carries its status, its dmc_shed_total label, and a Retry-After of at
// least one whole second.
func TestShedTaxonomyRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		reason string
		status int
		shed   shedInfo
	}{
		{shedQueueFull, http.StatusTooManyRequests,
			shedInfo{status: http.StatusTooManyRequests, reason: shedQueueFull, retryAfter: retryAfter(3 * time.Second), msg: "queue full"}},
		{shedDeadline, http.StatusTooManyRequests,
			shedInfo{status: http.StatusTooManyRequests, reason: shedDeadline, retryAfter: retryAfter(0), msg: "deadline"}},
		{shedDraining, http.StatusServiceUnavailable,
			shedInfo{status: http.StatusServiceUnavailable, reason: shedDraining, retryAfter: retryAfter(30 * time.Second), msg: "draining"}},
		{shedTenantQuota, http.StatusTooManyRequests,
			shedInfo{status: http.StatusTooManyRequests, reason: shedTenantQuota, retryAfter: retryAfter(1500 * time.Millisecond), msg: "quota"}},
	} {
		t.Run(tc.reason, func(t *testing.T) {
			s := NewWith(Config{})
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodGet, "/v1/jobs", nil)
			before := s.metrics.shed.With(tc.reason).Value()
			s.writeShed(rec, req, &tc.shed)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d", rec.Code, tc.status)
			}
			ra := rec.Header().Get("Retry-After")
			if ra == "" {
				t.Fatal("no Retry-After header")
			}
			var secs int
			if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
				t.Fatalf("Retry-After = %q, want whole seconds >= 1", ra)
			}
			if got := s.metrics.shed.With(tc.reason).Value(); got != before+1 {
				t.Fatalf("dmc_shed_total{%s} = %d, want %d", tc.reason, got, before+1)
			}
		})
	}
	// retryAfter rounds up to whole seconds with a 1s floor.
	for _, tc := range []struct {
		in   time.Duration
		want time.Duration
	}{
		{0, time.Second},
		{10 * time.Millisecond, time.Second},
		{time.Second, time.Second},
		{1500 * time.Millisecond, 2 * time.Second},
	} {
		if got := retryAfter(tc.in); got != tc.want {
			t.Fatalf("retryAfter(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestAdmissionWeightedFairness: under contention, grants track tenant
// weights — a weight-3 tenant drains roughly three items per weight-1
// item, instead of FIFO's arrival-order convoy.
func TestAdmissionWeightedFairness(t *testing.T) {
	a := newAdmission(1, 64, map[string]int{"heavy": 3, "light": 1})
	holder, shed := a.acquire(context.Background(), "seed")
	if shed != nil {
		t.Fatalf("seed acquire shed: %+v", shed)
	}

	const perTenant = 12
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for _, tenant := range []string{"heavy", "light"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				rel, shed := a.acquire(context.Background(), tenant)
				if shed != nil {
					t.Errorf("%s shed: %+v", tenant, shed)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				rel()
			}(tenant)
		}
	}
	// Wait until every waiter is parked, then start the grant chain.
	for i := 0; a.queueDepth() != 2*perTenant; i++ {
		if i > 5000 {
			t.Fatalf("only %d waiters parked", a.queueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	holder()
	wg.Wait()

	// While both tenants had backlog (the first perTenant*4/3 grants),
	// heavy should hold about a 3/4 share.
	window := perTenant * 4 / 3
	heavy := 0
	for _, tenant := range order[:window] {
		if tenant == "heavy" {
			heavy++
		}
	}
	want := window * 3 / 4
	if heavy < want-2 || heavy > want+2 {
		t.Fatalf("heavy got %d of the first %d grants, want ~%d (order %v)", heavy, window, want, order)
	}
	if len(order) != 2*perTenant {
		t.Fatalf("granted %d, want %d (work conservation)", len(order), 2*perTenant)
	}
}
