package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"dmc/internal/matrix"
	"dmc/internal/obs"
)

// The prefilter parameter must not change the mined rules at its
// conservative default, must light up the prefilter counters, and is a
// client error everywhere the sketch cannot run: implication mining and
// streamed datasets.
func TestSimPrefilterParam(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewWith(Config{Registry: reg})
	m := matrix.FromRows(6, [][]matrix.Col{
		{0, 1, 2}, {0, 1}, {0, 1, 4}, {2, 3}, {0, 1, 2}, {4, 5}, {0, 1},
	})
	s.Add("mem", m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var exact, pruned MineResponse[SimilarityWire]
	getJSON(t, ts.URL+"/v1/datasets/mem/similarities?threshold=60", http.StatusOK, &exact)
	getJSON(t, ts.URL+"/v1/datasets/mem/similarities?threshold=60&prefilter=1", http.StatusOK, &pruned)
	if exact.Total == 0 || pruned.Total != exact.Total {
		t.Fatalf("prefiltered mine: %d rules, exact %d", pruned.Total, exact.Total)
	}
	for i := range exact.Rules {
		if exact.Rules[i] != pruned.Rules[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, exact.Rules[i], pruned.Rules[i])
		}
	}
	if got := s.metrics.prefCand.Value(); got == 0 {
		t.Fatal("dmc_prefilter_candidates_total not advanced by the prefiltered mine")
	}
	// The parallel engine shares the same immutable filter.
	var par MineResponse[SimilarityWire]
	getJSON(t, ts.URL+"/v1/datasets/mem/similarities?threshold=60&prefilter=true&workers=2", http.StatusOK, &par)
	if par.Total != exact.Total {
		t.Fatalf("parallel prefiltered mine: %d rules, exact %d", par.Total, exact.Total)
	}

	// Client errors: implications never prefilter, and the value must be
	// a recognizable boolean.
	getJSON(t, ts.URL+"/v1/datasets/mem/implications?threshold=80&prefilter=1", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/datasets/mem/similarities?threshold=60&prefilter=maybe", http.StatusBadRequest, nil)
}

func TestSimPrefilterStreamedRejected(t *testing.T) {
	dir := t.TempDir()
	m := matrix.FromRows(4, [][]matrix.Col{{0, 1}, {0, 1, 2}, {2, 3}, {0, 1}})
	if err := matrix.Save(filepath.Join(dir, "big.dmb"), m); err != nil {
		t.Fatal(err)
	}
	s := NewWith(Config{StreamMinBytes: 1, Registry: obs.NewRegistry()})
	if err := s.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	getJSON(t, ts.URL+"/v1/datasets/big/similarities?threshold=60&prefilter=1", http.StatusBadRequest, nil)
	// Without the flag the streamed mine still works.
	getJSON(t, ts.URL+"/v1/datasets/big/similarities?threshold=60", http.StatusOK, nil)
}

// Prefiltered results get their own cache identity and never ride the
// snapshot derivation: after an append primes the resumable counters, a
// plain sim mine answers incrementally but a prefiltered one runs the
// pruned pipeline, and each repeat hits its own cache entry.
func TestSimPrefilterCacheAndSnapshot(t *testing.T) {
	_, ts := cachedTestServer(t)
	doReq(t, http.MethodPut, ts.URL+"/v1/datasets/d", "a b\na b c\nc d\na b\n")
	doAppend(t, ts.URL, "d", "a b\nc d\n")

	var plain, pruned MineResponse[SimilarityWire]
	getJSON(t, ts.URL+"/v1/datasets/d/similarities?threshold=60", http.StatusOK, &plain)
	if plain.Source != "incremental" {
		t.Fatalf("plain mine after append: source %q, want incremental", plain.Source)
	}
	getJSON(t, ts.URL+"/v1/datasets/d/similarities?threshold=60&prefilter=1", http.StatusOK, &pruned)
	if pruned.Source != "" {
		t.Fatalf("prefiltered mine: source %q, want a full run", pruned.Source)
	}
	if pruned.Total != plain.Total {
		t.Fatalf("prefiltered %d rules, incremental %d", pruned.Total, plain.Total)
	}
	getJSON(t, ts.URL+"/v1/datasets/d/similarities?threshold=60&prefilter=1", http.StatusOK, &pruned)
	if pruned.Source != "cache" {
		t.Fatalf("repeat prefiltered mine: source %q, want cache", pruned.Source)
	}
}

func TestParamsKeyPrefilter(t *testing.T) {
	base := params{threshold: 85}.paramsKey()
	pf := params{threshold: 85, prefilter: true}.paramsKey()
	if base == pf {
		t.Fatalf("paramsKey ignores prefilter: %q", base)
	}
}
