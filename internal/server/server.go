// Package server exposes the miners over HTTP/JSON — the serving layer
// behind cmd/dmcserve. Datasets are registered by name, either resident
// in memory or file-backed (Config.StreamMinBytes routes big matrix
// files to the out-of-core streaming engine); every mining endpoint
// runs the exact DMC pipelines, so the service inherits the library's
// no-false-positives / no-false-negatives guarantee.
//
// The layer is hardened for production traffic: every request is traced
// (request id, latency, status, bytes — obs.Trace), mining endpoints
// run under a concurrency limiter and an optional per-request deadline,
// uploads are size-capped with a proper 413, dataset names are
// validated against path tricks, and Run drains in-flight requests on
// shutdown. /v1/metrics exposes the process registry (request metrics,
// mining phase durations from core.Stats, stream spill/pass counters);
// /debug/pprof can be mounted behind a config switch.
//
// Endpoints (all JSON unless noted):
//
//	GET  /v1/healthz                   liveness: 200 while the process runs
//	GET  /v1/readyz                    readiness: 503 until the catalog is
//	                                   loaded and again while draining
//	GET  /v1/metrics                   Prometheus text (or ?format=json)
//	GET  /v1/datasets
//	PUT  /v1/datasets/{name}           body: basket lines (text/plain)
//	GET  /v1/datasets/{name}
//	DEL  /v1/datasets/{name}
//	POST /v1/datasets/{name}/rows      body: basket lines appended to a
//	                                   resident dataset (incremental growth)
//	GET  /v1/datasets/{name}/implications?threshold=85&minsupport=0&limit=100&workers=1
//	GET  /v1/datasets/{name}/similarities?threshold=70&minsupport=0&limit=100&workers=1
//	GET  /v1/datasets/{name}/expand?keyword=polgar&threshold=85&depth=-1
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dmc/internal/cache"
	"dmc/internal/core"
	"dmc/internal/fleet"
	"dmc/internal/jobs"
	"dmc/internal/matrix"
	"dmc/internal/obs"
	"dmc/internal/rules"
	"dmc/internal/store"
	"dmc/internal/stream"
)

// Config tunes the serving layer. The zero value is production-safe:
// metrics on obs.Default, slog.Default() logging, pprof off, a 64MB
// upload cap, no mining deadline and no mining concurrency limit.
type Config struct {
	// Registry receives all metrics; nil means obs.Default.
	Registry *obs.Registry
	// Logger receives structured request and lifecycle logs; nil means
	// slog.Default().
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// RequestTimeout bounds each mining request (queue wait included).
	// On expiry the client gets 503 and the abandoned mine finishes in
	// the background. Zero means no deadline.
	RequestTimeout time.Duration
	// MaxConcurrentMines caps mining requests running at once; excess
	// requests queue until a slot frees or their deadline expires
	// (then 429). Zero means unlimited.
	MaxConcurrentMines int
	// MaxQueueDepth bounds how many mining requests may wait behind the
	// MaxConcurrentMines slots before new arrivals are shed outright
	// (429 + Retry-After, dmc_shed_total{reason="queue_full"}). Zero
	// means 4x MaxConcurrentMines; negative means unbounded queueing.
	// Ignored when MaxConcurrentMines is 0.
	MaxQueueDepth int
	// BrownoutBytes caps the estimated bytes of resident mines running
	// at once. Above the cap a resident mine is not rejected: it browns
	// out to the out-of-core engine (spill + streamed passes), counted
	// on dmc_mines_degraded_total. Zero disables.
	BrownoutBytes int64
	// DrainDelay is how long Run keeps serving after shutdown is
	// requested with /v1/readyz already reporting 503 — the window a
	// load balancer needs to stop routing here before the listener
	// closes. Zero means no delay.
	DrainDelay time.Duration
	// Store, when set, is the durable dataset store: uploads are
	// committed to it before they are served (ENOSPC surfaces as 507),
	// LoadStore restores its catalog at boot, and the mining engines'
	// spill/degrade files live in its scratch directory.
	Store *store.Store
	// Cache, when set, is the content-addressed mine-result cache:
	// repeat mines of an unchanged (dataset, params) pair are served
	// from it in O(1), and append-only growth keeps its resumable
	// mining snapshots there. Nil disables caching.
	Cache *cache.Cache
	// MaxUploadBytes caps PUT bodies; zero means 64MB.
	MaxUploadBytes int64
	// ReadHeaderTimeout, ReadTimeout, WriteTimeout and IdleTimeout are
	// the http.Server knobs; zeros mean 10s, 5m, 5m and 2m.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
	// ShutdownGrace bounds the drain of in-flight requests once Run's
	// context is canceled; zero means 30s.
	ShutdownGrace time.Duration
	// FleetWorker mounts the fleet worker endpoints (POST
	// /v1/fleet/shard, PUT /v1/fleet/datasets/{name}): this replica
	// accepts column-shard mine tasks and dataset replica pushes from a
	// fleet coordinator. The probe endpoint GET /v1/fleet/info is
	// mounted unconditionally.
	FleetWorker bool
	// Fleet, when set, makes this replica a fleet coordinator: mine
	// requests with ?fleet=1 scatter across the coordinator's worker
	// nodes and gather byte-identically to a local mine.
	Fleet *fleet.Coordinator
	// StreamMinBytes makes LoadDir register matrix files (.dmt/.dmb) at
	// or above this size as file-backed: they stay on disk and mining
	// requests stream them through the out-of-core engine instead of
	// holding the matrix in memory. Zero disables (everything loads).
	StreamMinBytes int64
	// MemBudgetBytes bounds each mine's candidate-counter memory
	// (core.Options.MemBudgetBytes). A resident mine that overflows the
	// budget degrades gracefully: the matrix is spilled to a temp file
	// and re-mined through the partitioned out-of-core engine instead of
	// failing. Zero means unlimited.
	MemBudgetBytes int
	// JobWorkers is the async job pool size behind /v1/jobs (zero means
	// the jobs package default). Effective once OpenJobs is called.
	JobWorkers int
	// TenantQuota bounds each tenant's resource consumption; the zero
	// value disables all quotas. Breaches answer 429 with a Retry-After
	// derived from the tenant's own EWMA job cost.
	TenantQuota TenantQuota
	// TenantWeights are the fair-share scheduling weights used by both
	// the synchronous admission queue and the async job pool (missing
	// or < 1 means weight 1).
	TenantWeights map[string]int
}

// TenantQuota is one tenant's resource ceiling. Zero fields are
// unlimited.
type TenantQuota struct {
	// MaxDatasets caps datasets a tenant may own at once.
	MaxDatasets int
	// MaxBytes caps the total estimated bytes of a tenant's datasets.
	MaxBytes int64
	// MaxJobs caps a tenant's concurrently active (queued or running)
	// async jobs.
	MaxJobs int
}

func (c Config) registry() *obs.Registry {
	if c.Registry != nil {
		return c.Registry
	}
	return obs.Default
}

func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.Default()
}

func (c Config) maxUploadBytes() int64 {
	if c.MaxUploadBytes > 0 {
		return c.MaxUploadBytes
	}
	return 64 << 20
}

func durOr(d, def time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return def
}

// serverMetrics are the mining-side series; request-side series are
// owned by obs.Trace. All constructors are get-or-create, so multiple
// Server instances on one registry share series.
type serverMetrics struct {
	phase     *obs.HistogramVec // pipeline, phase
	switches  *obs.CounterVec   // pipeline, phase
	runs      *obs.CounterVec   // pipeline
	rules     *obs.CounterVec   // pipeline
	candAdd   obs.Counter
	candDel   obs.Counter
	peakBytes obs.Gauge
	inflight  obs.Gauge
	queued    obs.Gauge
	shed      *obs.CounterVec // reason
	rejected  obs.Counter
	timeouts  obs.Counter
	cancelled obs.Counter
	degraded  obs.Counter
	datasets  obs.Gauge
	incMines  *obs.CounterVec // pipeline
	appends   obs.Counter
	prefCand  obs.Counter
	prefPrune obs.Counter

	tenantDatasets *obs.GaugeVec   // tenant
	tenantBytes    *obs.GaugeVec   // tenant
	tenantRejects  *obs.CounterVec // tenant, resource
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		phase: reg.HistogramVec("dmc_mine_phase_seconds",
			"Mining phase durations from core.Stats.", nil, "pipeline", "phase"),
		switches: reg.CounterVec("dmc_mine_bitmap_switches_total",
			"Phases that switched to DMC-bitmap.", "pipeline", "phase"),
		runs: reg.CounterVec("dmc_mine_runs_total",
			"Completed mining runs.", "pipeline"),
		rules: reg.CounterVec("dmc_mine_rules_total",
			"Rules emitted by mining runs.", "pipeline"),
		candAdd: reg.Counter("dmc_mine_candidates_added_total",
			"Candidate-list insertions across mining runs."),
		candDel: reg.Counter("dmc_mine_candidates_deleted_total",
			"Dynamic candidate deletions across mining runs."),
		peakBytes: reg.Gauge("dmc_mine_peak_counter_bytes",
			"Largest counter-array size seen by any mining run."),
		inflight: reg.Gauge("dmc_mines_inflight",
			"Mining requests currently executing."),
		queued: reg.Gauge("dmc_mine_queue_depth",
			"Mining requests waiting for an admission slot."),
		shed: reg.CounterVec("dmc_shed_total",
			"Mining requests shed by admission control.", "reason"),
		rejected: reg.Counter("dmc_mines_rejected_total",
			"Mining requests rejected by the concurrency limiter."),
		timeouts: reg.Counter("dmc_mines_timeout_total",
			"Mining requests that exceeded their deadline."),
		cancelled: reg.Counter("dmc_mines_cancelled_total",
			"Mining operations aborted by context cancellation or deadline."),
		degraded: reg.Counter("dmc_mines_degraded_total",
			"Resident mines that overflowed the memory budget or brownout ceiling and re-ran out of core."),
		datasets: reg.Gauge("dmc_datasets_loaded",
			"Datasets currently resident in memory."),
		incMines: reg.CounterVec("dmc_incremental_mines_total",
			"Mines answered by deriving rules from a resumable snapshot instead of scanning.", "pipeline"),
		appends: reg.Counter("dmc_dataset_appends_total",
			"Row-append requests applied to datasets."),
		prefCand: reg.Counter("dmc_prefilter_candidates_total",
			"Column pairs kept by the LSH prefilter across prefiltered mines."),
		prefPrune: reg.Counter("dmc_prefilter_pruned_total",
			"Column pairs dropped by the LSH prefilter across prefiltered mines."),
		tenantDatasets: reg.GaugeVec("dmc_tenant_datasets",
			"Datasets owned per tenant namespace.", "tenant"),
		tenantBytes: reg.GaugeVec("dmc_tenant_bytes",
			"Estimated dataset bytes owned per tenant namespace.", "tenant"),
		tenantRejects: reg.CounterVec("dmc_tenant_quota_rejections_total",
			"Requests refused by a tenant quota.", "tenant", "resource"),
	}
}

// dataset is one served dataset: either resident in memory (m != nil)
// or file-backed (path != ""), in which case mining requests stream it
// from disk through the out-of-core engine. hash is the content
// address ("sha256-<hex>", the store's blob identity) used to key the
// mine-result cache; empty means this dataset's results are not
// cacheable (a file-backed dataset that never went through the store).
type dataset struct {
	m    *matrix.Matrix
	path string
	hash string
	info DatasetInfo
	// tenant is the owning namespace; "" means the default tenant
	// (datasets recovered from the store or loaded from disk at boot
	// land there — the store catalog predates tenancy and carries no
	// owner).
	tenant string
	// bytes is the dataset's estimated storage footprint for the
	// per-tenant byte quota: the committed blob size for durable
	// datasets, the resident-footprint estimate otherwise.
	bytes int64
}

// label names column c: real labels for in-memory datasets that have
// them, the matrix's "c<id>" placeholder otherwise. File-backed
// datasets never carry labels (they are never parsed whole).
func (d *dataset) label(c matrix.Col) string {
	if d.m != nil {
		return d.m.Label(c)
	}
	return fmt.Sprintf("c%d", c)
}

// Server is the HTTP handler. The zero value is not usable; construct
// with New or NewWith.
type Server struct {
	mu       sync.RWMutex
	datasets map[string]*dataset

	cfg     Config
	metrics *serverMetrics
	hooks   *core.Hooks
	adm     *admission    // nil = unlimited
	st      *store.Store  // nil = memory-only serving
	rc      *cache.Cache  // nil = no result caching
	jm      *jobs.Manager // nil = async jobs not enabled

	// appendMu serializes POST rows requests: an append reads the
	// current registration, grows it, and swaps it, and two interleaved
	// appends would lose one's rows.
	appendMu sync.Mutex

	// ready gates /v1/readyz: false until the catalog is loaded (set by
	// the embedding binary around LoadStore/LoadDir) and irrelevant once
	// draining is set, which also sheds new mining requests.
	ready    atomic.Bool
	draining atomic.Bool
	resident atomic.Int64 // brownout ledger: bytes of resident mines running

	// Mining entry points, swappable by tests. workers routes between
	// the serial and parallel pipelines: 1 is serial, anything else is
	// the §7 column-partitioned engine (0 = one worker per CPU). The
	// File variants stream a file-backed dataset from disk with the
	// same worker fan-out. The in-memory variants surface cancellation
	// and budget overflow (SourceError panics) as errors via
	// core.CapturePass.
	mineImp     func(m *matrix.Matrix, t core.Threshold, o core.Options, workers int) ([]rules.Implication, core.Stats, error)
	mineSim     func(m *matrix.Matrix, t core.Threshold, o core.Options, workers int) ([]rules.Similarity, core.Stats, error)
	mineImpFile func(path string, t core.Threshold, o core.Options, cfg stream.Config) ([]rules.Implication, core.Stats, error)
	mineSimFile func(path string, t core.Threshold, o core.Options, cfg stream.Config) ([]rules.Similarity, core.Stats, error)
}

// New returns an empty server with the default Config.
func New() *Server { return NewWith(Config{}) }

// NewWith returns an empty server with the given Config.
func NewWith(cfg Config) *Server {
	s := &Server{
		datasets: make(map[string]*dataset),
		cfg:      cfg,
		metrics:  newServerMetrics(cfg.registry()),
		mineImp: func(m *matrix.Matrix, t core.Threshold, o core.Options, workers int) ([]rules.Implication, core.Stats, error) {
			var rs []rules.Implication
			var st core.Stats
			err := core.CapturePass(func() {
				if workers == 1 {
					rs, st = core.DMCImp(m, t, o)
				} else {
					rs, st = core.DMCImpParallel(m, t, o, workers)
				}
			})
			return rs, st, err
		},
		mineSim: func(m *matrix.Matrix, t core.Threshold, o core.Options, workers int) ([]rules.Similarity, core.Stats, error) {
			var rs []rules.Similarity
			var st core.Stats
			err := core.CapturePass(func() {
				if workers == 1 {
					rs, st = core.DMCSim(m, t, o)
				} else {
					rs, st = core.DMCSimParallel(m, t, o, workers)
				}
			})
			return rs, st, err
		},
		mineImpFile: stream.MineImplicationsCfg,
		mineSimFile: stream.MineSimilaritiesCfg,
	}
	s.adm = newAdmission(cfg.MaxConcurrentMines, cfg.MaxQueueDepth, cfg.TenantWeights)
	s.st = cfg.Store
	s.rc = cfg.Cache
	// Library users get a ready server out of the box; binaries that
	// load a catalog first call SetReady(false) before listening.
	s.ready.Store(true)
	m := s.metrics
	s.hooks = &core.Hooks{
		OnPhase: func(pipeline, phase string, d time.Duration) {
			m.phase.With(pipeline, phase).Observe(d.Seconds())
		},
		OnBitmapSwitch: func(pipeline, phase string, pos int) {
			m.switches.With(pipeline, phase).Inc()
		},
	}
	return s
}

// SetReady flips what /v1/readyz reports. Binaries that restore a
// catalog at boot call SetReady(false) before listening and
// SetReady(true) once the catalog is served, so a load balancer never
// routes to a replica that would 404 every dataset.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports whether /v1/readyz currently returns 200.
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Add registers (or replaces) an in-memory dataset under the given
// name.
func (s *Server) Add(name string, m *matrix.Matrix) {
	d := &dataset{m: m, info: info(name, m)}
	if s.wantHash() {
		if h, err := store.ContentHash(m); err == nil {
			d.hash = h
		}
	}
	s.add(name, d)
}

// wantHash reports whether resident datasets should be content-
// addressed even without a durable store behind them: the mine-result
// cache keys by hash, and fleet coordination uses it as the replica
// identity (coordinator and worker sides both).
func (s *Server) wantHash() bool {
	return s.rc != nil || s.cfg.Fleet != nil || s.cfg.FleetWorker
}

// AddFile registers a file-backed dataset: only the header is read
// here; mining requests stream the rows from disk through the
// out-of-core engine. The file must outlive the server.
func (s *Server) AddFile(name, path string) error {
	rr, closer, err := matrix.OpenRowReader(path)
	if err != nil {
		return err
	}
	closer.Close()
	s.add(name, &dataset{path: path, info: DatasetInfo{
		Name: name, Rows: rr.NumRows(), Cols: rr.NumCols(), Streamed: true,
	}})
	return nil
}

func (s *Server) add(name string, d *dataset) {
	s.mu.Lock()
	s.datasets[name] = d
	s.metrics.datasets.Set(int64(len(s.datasets)))
	s.mu.Unlock()
}

// get returns the named dataset.
func (s *Server) get(name string) (*dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[name]
	return d, ok
}

// defaultTenant is the namespace of requests without an X-DMC-Tenant
// header — and of every dataset that predates tenancy (store recovery,
// LoadDir, fleet replica pushes).
const defaultTenant = "default"

// tenantHeader names the request's tenant namespace.
const tenantHeader = "X-DMC-Tenant"

// owner is the dataset's effective tenant ("" normalizes to the
// default namespace).
func (d *dataset) owner() string {
	if d.tenant == "" {
		return defaultTenant
	}
	return d.tenant
}

// requestTenant is the request's tenant namespace: the validated
// X-DMC-Tenant header, defaultTenant when absent, "" when malformed
// (handlers answer 400 via tenantOf; the admission path treats "" as
// its own bucket, which is harmless for a request that will 400).
func requestTenant(r *http.Request) string {
	t := r.Header.Get(tenantHeader)
	if t == "" {
		return defaultTenant
	}
	if !jobs.ValidTenant(t) {
		return ""
	}
	return t
}

// tenantOf validates the request's tenant, answering 400 on a
// malformed header.
func (s *Server) tenantOf(w http.ResponseWriter, r *http.Request) (string, bool) {
	t := requestTenant(r)
	if t == "" {
		writeErr(w, r, http.StatusBadRequest,
			"invalid %s header %q: want a leading alphanumeric, then alphanumerics, '.', '_' or '-' (max 64 chars)",
			tenantHeader, r.Header.Get(tenantHeader))
		return "", false
	}
	return t, true
}

// getFor returns the named dataset if tenant owns it. Other tenants'
// datasets are indistinguishable from absent ones — namespaces do not
// leak existence.
func (s *Server) getFor(tenant, name string) (*dataset, bool) {
	d, ok := s.get(name)
	if !ok || d.owner() != tenant {
		return nil, false
	}
	return d, true
}

// tenantUsage sums tenant's owned datasets and bytes for quota checks
// and the dmc_tenant_* gauges.
func (s *Server) tenantUsage(tenant string) (n int, bytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.datasets {
		if d.owner() == tenant {
			n++
			bytes += d.bytes
		}
	}
	return n, bytes
}

// noteTenantUsage refreshes the tenant's dataset gauges after an add,
// replace or delete.
func (s *Server) noteTenantUsage(tenant string) {
	n, b := s.tenantUsage(tenant)
	s.metrics.tenantDatasets.With(tenant).Set(int64(n))
	s.metrics.tenantBytes.With(tenant).Set(b)
}

// Handler returns the HTTP routing table wrapped in the tracing
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case s.draining.Load():
			// Retry-After on every 503 (not just admission sheds): fleet
			// coordinators and external clients back off uniformly.
			setRetryAfter(w, retryAfter(durOr(s.cfg.ShutdownGrace, 30*time.Second)))
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		case !s.ready.Load():
			setRetryAfter(w, retryAfter(time.Second))
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "loading"})
		default:
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		}
	})
	mux.Handle("GET /v1/metrics", s.cfg.registry().Handler())
	mux.HandleFunc("GET /v1/datasets", s.handleList)
	mux.HandleFunc("PUT /v1/datasets/{name}", s.handlePut)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleDescribe)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDelete)
	mux.HandleFunc("POST /v1/datasets/{name}/rows", s.handleAppend)
	mux.HandleFunc("GET /v1/datasets/{name}/implications", s.handleImplications)
	mux.HandleFunc("GET /v1/datasets/{name}/similarities", s.handleSimilarities)
	mux.HandleFunc("GET /v1/datasets/{name}/expand", s.handleExpand)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET "+fleet.InfoPath, s.handleFleetInfo)
	if s.cfg.FleetWorker {
		mux.HandleFunc("POST "+fleet.ShardPath, s.handleFleetShard)
		mux.HandleFunc("PUT "+fleet.DatasetsPath+"{name}", s.handleFleetDataset)
	}
	if s.cfg.Fleet != nil {
		mux.HandleFunc("GET /v1/fleet/status", s.handleFleetStatus)
	}
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return obs.Trace(mux, obs.TraceConfig{
		Registry: s.cfg.registry(),
		Logger:   s.cfg.Logger,
		Endpoint: endpointLabel,
		Prefix:   "dmc_http",
	})
}

// endpointLabel collapses path parameters so metric label cardinality
// stays bounded no matter what clients request.
func endpointLabel(r *http.Request) string {
	p := r.URL.Path
	if strings.HasPrefix(p, "/debug/pprof/") {
		return "/debug/pprof"
	}
	seg := strings.Split(strings.Trim(p, "/"), "/")
	if len(seg) >= 3 && seg[0] == "v1" && seg[1] == "fleet" && seg[2] == "datasets" {
		return "/v1/fleet/datasets/{name}"
	}
	if len(seg) >= 2 && seg[0] == "v1" && seg[1] == "jobs" {
		switch {
		case len(seg) == 2:
			return "/v1/jobs"
		case len(seg) == 4 && (seg[3] == "events" || seg[3] == "result"):
			return "/v1/jobs/{id}/" + seg[3]
		default:
			return "/v1/jobs/{id}"
		}
	}
	if len(seg) >= 3 && seg[0] == "v1" && seg[1] == "datasets" {
		if len(seg) == 3 {
			return "/v1/datasets/{name}"
		}
		switch seg[3] {
		case "implications", "similarities", "expand", "rows":
			return "/v1/datasets/{name}/" + seg[3]
		}
		return "/v1/datasets/{name}/other"
	}
	switch p {
	case "/v1/healthz", "/v1/readyz", "/v1/metrics", "/v1/datasets",
		fleet.InfoPath, fleet.ShardPath, "/v1/fleet/status":
		return p
	}
	return "other"
}

// Run serves the handler on ln until ctx is canceled, then shuts down
// gracefully: /v1/readyz flips to 503 and new mining requests are shed
// immediately, the listener stays open for Config.DrainDelay so load
// balancers notice, then it closes and in-flight requests get up to
// Config.ShutdownGrace to finish. Returns nil on a clean drained
// shutdown.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: durOr(s.cfg.ReadHeaderTimeout, 10*time.Second),
		ReadTimeout:       durOr(s.cfg.ReadTimeout, 5*time.Minute),
		WriteTimeout:      durOr(s.cfg.WriteTimeout, 5*time.Minute),
		IdleTimeout:       durOr(s.cfg.IdleTimeout, 2*time.Minute),
		ErrorLog:          slog.NewLogLogger(s.cfg.logger().Handler(), slog.LevelWarn),
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	s.draining.Store(true)
	if d := s.cfg.DrainDelay; d > 0 {
		// Readiness already reports 503; keep accepting until the load
		// balancer has had time to stop sending traffic here.
		select {
		case err := <-errc:
			return err
		case <-time.After(d):
		}
	}
	grace := durOr(s.cfg.ShutdownGrace, 30*time.Second)
	s.cfg.logger().Info("shutting down", slog.Duration("grace", grace))
	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(dctx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}

// DatasetInfo is the wire form of a dataset summary. Streamed datasets
// report Ones as 0: only the file header is read at registration, and
// the ones count would need a full scan.
type DatasetInfo struct {
	Name     string `json:"name"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	Ones     int    `json:"ones"`
	Labeled  bool   `json:"labeled"`
	Streamed bool   `json:"streamed,omitempty"`
	Durable  bool   `json:"durable,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	s.mu.RLock()
	out := make([]DatasetInfo, 0, len(s.datasets))
	for _, d := range s.datasets {
		if d.owner() == tenant {
			out = append(out, d.info)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func info(name string, m *matrix.Matrix) DatasetInfo {
	return DatasetInfo{Name: name, Rows: m.NumRows(), Cols: m.NumCols(), Ones: m.NumOnes(), Labeled: m.Labels() != nil}
}

// datasetNameRE admits sane file-system-ish names: a leading
// alphanumeric, then up to 127 alphanumerics, dots, underscores or
// dashes. Path separators and leading dots never match, which blocks
// traversal tricks before they reach any storage layer.
var datasetNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

func validDatasetName(name string) bool {
	return datasetNameRE.MatchString(name) && !strings.Contains(name, "..")
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validDatasetName(name) {
		writeErr(w, r, http.StatusBadRequest, "invalid dataset name %q: want a leading alphanumeric, then alphanumerics, '.', '_' or '-' (max 128 chars, no '..')", name)
		return
	}
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	if existing, ok := s.get(name); ok && existing.owner() != tenant {
		// Dataset names are global (the store catalog is flat); the
		// namespace guards ownership, not naming. A name taken by another
		// tenant cannot be replaced or probed further.
		writeErr(w, r, http.StatusConflict, "dataset name %q is taken", name)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxUploadBytes())
	m, err := matrix.ReadBaskets(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, r, http.StatusRequestEntityTooLarge, "body exceeds the %d-byte upload limit", tooBig.Limit)
			return
		}
		writeErr(w, r, http.StatusBadRequest, "parsing baskets: %v", err)
		return
	}
	if m.NumRows() == 0 || m.NumOnes() == 0 {
		writeErr(w, r, http.StatusBadRequest, "dataset has no transactions")
		return
	}
	est := residentFootprint(m)
	if shed := s.checkDatasetQuota(tenant, name, est); shed != nil {
		s.writeShed(w, r, shed)
		return
	}
	inf := info(name, m)
	var hash string
	size := est
	if s.st != nil {
		// Durability before visibility: the upload is committed to the
		// store first, so a dataset a client was told about can never
		// vanish in a restart.
		e, err := s.st.Put(name, m)
		if err != nil {
			switch {
			case errors.Is(err, syscall.ENOSPC):
				writeErr(w, r, http.StatusInsufficientStorage, "persisting dataset: %v", err)
			case errors.Is(err, store.ErrCorrupt):
				writeErr(w, r, http.StatusServiceUnavailable, "persisting dataset: %v", err)
			default:
				writeErr(w, r, http.StatusInternalServerError, "persisting dataset: %v", err)
			}
			return
		}
		inf.Durable = true
		hash = e.Hash
		size = e.Size
		if s.cfg.StreamMinBytes > 0 && e.Size >= s.cfg.StreamMinBytes {
			// Mirror LoadStore's routing at upload time: a blob this big
			// is served file-backed from its committed blob immediately,
			// not held resident until the next restart happens to route
			// it correctly.
			if err := s.AddFile(name, e.Path); err != nil {
				writeErr(w, r, http.StatusInternalServerError, "registering dataset as streamed: %v", err)
				return
			}
			s.mu.Lock()
			s.datasets[name].info.Durable = true
			s.datasets[name].hash = hash
			s.datasets[name].tenant = tenant
			s.datasets[name].bytes = size
			inf = s.datasets[name].info
			s.mu.Unlock()
			s.noteTenantUsage(tenant)
			writeJSON(w, http.StatusCreated, inf)
			return
		}
	} else if s.wantHash() {
		if h, err := store.ContentHash(m); err == nil {
			hash = h
		}
	}
	s.add(name, &dataset{m: m, info: inf, hash: hash, tenant: tenant, bytes: size})
	s.noteTenantUsage(tenant)
	writeJSON(w, http.StatusCreated, inf)
}

func (s *Server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	d, ok := s.getFor(tenant, name)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "no dataset %q", name)
		return
	}
	writeJSON(w, http.StatusOK, d.info)
}

// runMine executes mine under admission control and the per-request
// deadline, recording run metrics on success. Admission may shed the
// request outright — draining server, full queue, or a deadline the
// queue-wait estimate already proves unmeetable — with 429/503 plus
// Retry-After. The context handed to mine is the request's own (so a
// client disconnect cancels an abandoned mine) bounded by
// RequestTimeout; the pipelines observe it via core.Options.Ctx and
// abort at their next interrupt poll, which is what frees the
// admission slot promptly instead of burning CPU for a caller that is
// gone. On shed or deadline expiry the error response is written here
// and ok=false returned; typed mining failures map to stable statuses
// (503 cancelled/deadline, 507 memory budget, 500 otherwise).
func runMine[R any](s *Server, w http.ResponseWriter, r *http.Request, pipeline string, mine func(ctx context.Context) ([]R, core.Stats, error)) ([]R, core.Stats, bool) {
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	if s.draining.Load() {
		s.writeShed(w, r, &shedInfo{
			status: http.StatusServiceUnavailable, reason: shedDraining,
			retryAfter: retryAfter(durOr(s.cfg.ShutdownGrace, 30*time.Second)),
			msg:        "server is draining for shutdown; retry against another replica",
		})
		return nil, core.Stats{}, false
	}
	s.metrics.queued.Set(s.adm.queueDepth())
	release, shed := s.adm.acquire(ctx, requestTenant(r))
	s.metrics.queued.Set(s.adm.queueDepth())
	if shed != nil {
		s.writeShed(w, r, shed)
		return nil, core.Stats{}, false
	}
	s.metrics.inflight.Inc()
	start := time.Now()
	done := func() {
		s.metrics.inflight.Dec()
		s.adm.observe(time.Since(start))
		release()
	}
	type result struct {
		rs  []R
		st  core.Stats
		err error
	}
	ch := make(chan result, 1)
	go func() {
		defer done()
		rs, st, err := mine(ctx)
		ch <- result{rs, st, err}
	}()
	select {
	case <-ctx.Done():
		s.metrics.timeouts.Inc()
		setRetryAfter(w, s.adm.estRetryAfter())
		writeErr(w, r, http.StatusServiceUnavailable, "mining did not finish before the request deadline; narrow the query or raise the limit")
		return nil, core.Stats{}, false
	case res := <-ch:
		if res.err != nil {
			switch {
			case errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded):
				s.metrics.timeouts.Inc()
				setRetryAfter(w, s.adm.estRetryAfter())
				writeErr(w, r, http.StatusServiceUnavailable, "mining was cancelled: %v", res.err)
			case isBudgetErr(res.err):
				writeErr(w, r, http.StatusInsufficientStorage, "mining exceeded the memory budget: %v", res.err)
			default:
				s.cfg.logger().Error("mine failed", slog.String("pipeline", pipeline),
					slog.String("request_id", obs.RequestID(r.Context())), slog.Any("error", res.err))
				writeErr(w, r, http.StatusInternalServerError, "mining failed: %v", res.err)
			}
			return nil, core.Stats{}, false
		}
		s.recordMine(pipeline, res.st)
		return res.rs, res.st, true
	}
}

func isBudgetErr(err error) bool {
	var be *core.BudgetError
	return errors.As(err, &be)
}

// noteCancelled counts a context-aborted resident mine on
// dmc_mines_cancelled_total (the streamed path counts its own aborts in
// the stream package — same series, shared by name), passing err
// through.
func (s *Server) noteCancelled(err error) error {
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		s.metrics.cancelled.Inc()
	}
	return err
}

// residentFootprint estimates the memory a resident mine of m holds —
// the matrix rows plus the O(cols) counter arrays — for the brownout
// ledger. A rough proxy is fine: the ledger shapes load, it does not
// enforce a hard limit (core.Options.MemBudgetBytes does that).
func residentFootprint(m *matrix.Matrix) int64 {
	return int64(m.NumOnes())*8 + int64(m.NumCols())*16
}

// scratchDir is where spill and degrade files land: the durable
// store's scratch directory when one is configured (swept at every
// boot, so a SIGKILLed mine leaves no debris), the OS temp dir
// otherwise.
func (s *Server) scratchDir() string {
	if s.st != nil {
		return s.st.ScratchDir()
	}
	return ""
}

// streamCfg is the out-of-core engine configuration for one mine.
func (s *Server) streamCfg(workers int, ctx context.Context) stream.Config {
	return stream.Config{Workers: workers, Ctx: ctx, TmpDir: s.scratchDir()}
}

// mineImpMem mines a resident dataset with two degrade paths into the
// partitioned out-of-core engine, whose density-bucket re-ordering and
// disk-backed passes are exactly the paper's answer to counter arrays
// that outgrow memory:
//
//   - brownout: when the admission ledger says this mine would push the
//     resident-mine footprint past Config.BrownoutBytes, it runs out of
//     core from the start instead of being rejected;
//   - budget overflow: a *core.BudgetError from the resident pipeline
//     spills the matrix and re-mines it out of core.
//
// Both paths count on dmc_mines_degraded_total.
func (s *Server) mineImpMem(m *matrix.Matrix, t core.Threshold, o core.Options, workers int) ([]rules.Implication, core.Stats, error) {
	var berr error // the budget overflow that triggered the degrade, if any
	relMem, brownout := s.admitResident(residentFootprint(m))
	if !brownout {
		defer relMem()
		rs, st, err := s.mineImp(m, t, o, workers)
		if err == nil {
			return rs, st, nil
		}
		if !isBudgetErr(err) {
			return nil, st, s.noteCancelled(err)
		}
		berr = err
	}
	path, cleanup, serr := spillResident(m, s.scratchDir())
	if serr != nil {
		// Keep the triggering budget error in the chain (nil on the
		// brownout path): the client must see that the mine overflowed
		// its budget, not just that the fallback's spill failed.
		return nil, core.Stats{}, errors.Join(berr, serr)
	}
	defer cleanup()
	s.metrics.degraded.Inc()
	return s.mineImpFile(path, t, o, s.streamCfg(workers, o.Ctx))
}

// mineSimMem is mineImpMem for similarity rules.
// mineSimMem runs a resident similarity mine, degrading to the
// out-of-core engine on budget overflow. The degraded path streams from
// disk and therefore ignores o.Prefilter — it returns the full exact
// rule set, a superset of the prefiltered one, which the prefilter
// contract permits (the sketch may only cut work, never promise cuts).
func (s *Server) mineSimMem(m *matrix.Matrix, t core.Threshold, o core.Options, workers int) ([]rules.Similarity, core.Stats, error) {
	var berr error
	relMem, brownout := s.admitResident(residentFootprint(m))
	if !brownout {
		defer relMem()
		rs, st, err := s.mineSim(m, t, o, workers)
		if err == nil {
			return rs, st, nil
		}
		if !isBudgetErr(err) {
			return nil, st, s.noteCancelled(err)
		}
		berr = err
	}
	path, cleanup, serr := spillResident(m, s.scratchDir())
	if serr != nil {
		return nil, core.Stats{}, errors.Join(berr, serr)
	}
	defer cleanup()
	s.metrics.degraded.Inc()
	return s.mineSimFile(path, t, o, s.streamCfg(workers, o.Ctx))
}

// spillResident saves a resident matrix to a temp binary file under
// dir ("" = OS temp) for the degrade-to-disk path; cleanup removes it.
func spillResident(m *matrix.Matrix, dir string) (string, func(), error) {
	tmp, err := os.MkdirTemp(dir, "dmc-degrade-")
	if err != nil {
		return "", nil, err
	}
	path := filepath.Join(tmp, "resident"+matrix.ExtBinary)
	if err := matrix.Save(path, m); err != nil {
		os.RemoveAll(tmp)
		return "", nil, err
	}
	return path, func() { os.RemoveAll(tmp) }, nil
}

// recordMine feeds one run's core.Stats into the registry; phase
// durations and bitmap switches already arrived via s.hooks.
func (s *Server) recordMine(pipeline string, st core.Stats) {
	m := s.metrics
	m.runs.With(pipeline).Inc()
	m.rules.With(pipeline).Add(int64(st.NumRules))
	m.candAdd.Add(int64(st.CandidatesAdded))
	m.candDel.Add(int64(st.CandidatesDeleted))
	m.peakBytes.Max(int64(st.PeakCounterBytes))
	m.prefCand.Add(int64(st.PrefilterCandidates))
	m.prefPrune.Add(int64(st.PrefilterPruned))
}

// ImplicationWire is the wire form of an implication rule.
type ImplicationWire struct {
	From       string  `json:"from"`
	To         string  `json:"to"`
	Confidence float64 `json:"confidence"`
	Hits       int     `json:"hits"`
	Ones       int     `json:"ones"`
}

// MineResponse wraps a mined rule list with run metadata. Source
// reports how the rules were obtained: "" for a full scan, "cache" for
// an O(1) cached result, "incremental" for a derivation from the
// resumable snapshot.
type MineResponse[R any] struct {
	Dataset   string `json:"dataset"`
	Threshold int    `json:"threshold_percent"`
	Total     int    `json:"total_rules"`
	Truncated bool   `json:"truncated"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Source    string `json:"source,omitempty"`
	Rules     []R    `json:"rules"`
}

func (s *Server) handleImplications(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	d, ok := s.getFor(tenant, name)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "no dataset %q", name)
		return
	}
	p, err := mineParams(r)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if p.prefilter {
		// Confidence is not bounded by Jaccard similarity: a 100%-confident
		// rule can pair columns with arbitrarily low resemblance, so an LSH
		// sketch has no license to drop pairs here.
		writeErr(w, r, http.StatusBadRequest, "prefilter applies to similarity mining only")
		return
	}
	start := time.Now()
	var source string
	rs, cached := s.cachedImps(d, p)
	if !cached {
		if inc, ok := s.snapshot(d); ok {
			// Derive from the resumable counters — O(pairs), no scan, no
			// admission slot — then cache the result for O(1) repeats.
			rs = inc.Implications(core.FromPercent(p.threshold), core.Options{MinSupport: p.minSupport})
			source = "incremental"
			s.metrics.incMines.With("imp").Inc()
			s.storeImps(d, p, rs)
		}
	} else {
		source = "cache"
	}
	var st core.Stats
	if source == "" && p.fleet {
		if !s.fleetReady(w, r, d) {
			return
		}
		var ok bool
		rs, st, ok = runMine(s, w, r, "imp-fleet", func(ctx context.Context) ([]rules.Implication, core.Stats, error) {
			return s.mineImpFleet(ctx, d, p)
		})
		if !ok {
			return
		}
		source = "fleet"
		s.storeImps(d, p, rs)
	} else if source == "" {
		opts := core.Options{MinSupport: p.minSupport, Hooks: s.hooks, MemBudgetBytes: s.cfg.MemBudgetBytes}
		var ok bool
		rs, st, ok = runMine(s, w, r, "imp", func(ctx context.Context) ([]rules.Implication, core.Stats, error) {
			opts := opts
			opts.Ctx = ctx
			if d.m == nil {
				return s.mineImpFile(d.path, core.FromPercent(p.threshold), opts, s.streamCfg(p.workers, ctx))
			}
			return s.mineImpMem(d.m, core.FromPercent(p.threshold), opts, p.workers)
		})
		if !ok {
			return
		}
		s.storeImps(d, p, rs)
	}
	elapsed := st.Total
	if source != "" {
		elapsed = time.Since(start)
	}
	// Deterministic wire order: confidence descending, then column ids —
	// a cached or incremental replay must render byte-identically to the
	// full scan it stands in for.
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Confidence() != rs[j].Confidence() {
			return rs[i].Confidence() > rs[j].Confidence()
		}
		if rs[i].From != rs[j].From {
			return rs[i].From < rs[j].From
		}
		return rs[i].To < rs[j].To
	})
	resp := MineResponse[ImplicationWire]{
		Dataset: name, Threshold: p.threshold, Total: len(rs), ElapsedMS: elapsed.Milliseconds(),
		Source: source,
	}
	for i, rule := range rs {
		if i == p.limit {
			resp.Truncated = true
			break
		}
		resp.Rules = append(resp.Rules, ImplicationWire{
			From: d.label(rule.From), To: d.label(rule.To),
			Confidence: rule.Confidence(), Hits: rule.Hits, Ones: rule.Ones,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// SimilarityWire is the wire form of a similarity rule.
type SimilarityWire struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Similarity float64 `json:"similarity"`
	Hits       int     `json:"hits"`
	OnesA      int     `json:"ones_a"`
	OnesB      int     `json:"ones_b"`
}

func (s *Server) handleSimilarities(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	d, ok := s.getFor(tenant, name)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "no dataset %q", name)
		return
	}
	p, err := mineParams(r)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if p.prefilter && d.m == nil {
		// The sketch pass signs columns of a resident matrix; the streamed
		// engine never materializes one.
		writeErr(w, r, http.StatusBadRequest, "dataset %q is file-backed (streamed); prefilter needs a resident dataset", name)
		return
	}
	start := time.Now()
	var source string
	rs, cached := s.cachedSims(d, p)
	if !cached && !p.prefilter {
		// The snapshot derivation replays the exact counters; a prefiltered
		// request asks for the sketch-pruned pipeline, so it must actually
		// run it (the cache rung above is fine: its key carries the flag).
		if inc, ok := s.snapshot(d); ok {
			rs = inc.Similarities(core.FromPercent(p.threshold), core.Options{MinSupport: p.minSupport})
			source = "incremental"
			s.metrics.incMines.With("sim").Inc()
			s.storeSims(d, p, rs)
		}
	} else if cached {
		source = "cache"
	}
	var st core.Stats
	if source == "" && p.fleet {
		if !s.fleetReady(w, r, d) {
			return
		}
		var ok bool
		rs, st, ok = runMine(s, w, r, "sim-fleet", func(ctx context.Context) ([]rules.Similarity, core.Stats, error) {
			return s.mineSimFleet(ctx, d, p)
		})
		if !ok {
			return
		}
		source = "fleet"
		s.storeSims(d, p, rs)
	} else if source == "" {
		opts := core.Options{MinSupport: p.minSupport, Hooks: s.hooks, MemBudgetBytes: s.cfg.MemBudgetBytes}
		if p.prefilter {
			opts.Prefilter = &core.PrefilterOptions{}
		}
		var ok bool
		rs, st, ok = runMine(s, w, r, "sim", func(ctx context.Context) ([]rules.Similarity, core.Stats, error) {
			opts := opts
			opts.Ctx = ctx
			if d.m == nil {
				return s.mineSimFile(d.path, core.FromPercent(p.threshold), opts, s.streamCfg(p.workers, ctx))
			}
			return s.mineSimMem(d.m, core.FromPercent(p.threshold), opts, p.workers)
		})
		if !ok {
			return
		}
		s.storeSims(d, p, rs)
	}
	elapsed := st.Total
	if source != "" {
		elapsed = time.Since(start)
	}
	// The wire contract pairs come back rank-ordered — the rarer column
	// first, ids breaking ties — regardless of which engine produced the
	// rules: scan engines emit that orientation natively, but cached
	// payloads and snapshot derivations are canonicalized by column id,
	// so re-orient here. Then sort deterministically so a replayed
	// result renders byte-identically to the scan it stands in for.
	for i := range rs {
		if rs[i].OnesB < rs[i].OnesA || (rs[i].OnesB == rs[i].OnesA && rs[i].B < rs[i].A) {
			rs[i].A, rs[i].B = rs[i].B, rs[i].A
			rs[i].OnesA, rs[i].OnesB = rs[i].OnesB, rs[i].OnesA
		}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Value() != rs[j].Value() {
			return rs[i].Value() > rs[j].Value()
		}
		if rs[i].A != rs[j].A {
			return rs[i].A < rs[j].A
		}
		return rs[i].B < rs[j].B
	})
	resp := MineResponse[SimilarityWire]{
		Dataset: name, Threshold: p.threshold, Total: len(rs), ElapsedMS: elapsed.Milliseconds(),
		Source: source,
	}
	for i, rule := range rs {
		if i == p.limit {
			resp.Truncated = true
			break
		}
		resp.Rules = append(resp.Rules, SimilarityWire{
			A: d.label(rule.A), B: d.label(rule.B),
			Similarity: rule.Value(), Hits: rule.Hits, OnesA: rule.OnesA, OnesB: rule.OnesB,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExpandGroupWire is one antecedent's rules in an expansion response.
type ExpandGroupWire struct {
	From  string            `json:"from"`
	Rules []ImplicationWire `json:"rules"`
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tenant, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	d, ok := s.getFor(tenant, name)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "no dataset %q", name)
		return
	}
	if d.m == nil {
		writeErr(w, r, http.StatusBadRequest, "dataset %q is file-backed (streamed) and has no labels; expansion needs a labeled in-memory dataset", name)
		return
	}
	m := d.m
	if m.Labels() == nil {
		writeErr(w, r, http.StatusBadRequest, "dataset %q has no labels", name)
		return
	}
	keyword := r.URL.Query().Get("keyword")
	if keyword == "" {
		writeErr(w, r, http.StatusBadRequest, "missing keyword parameter")
		return
	}
	p, err := mineParams(r)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	depth, err := intParam(r, "depth", -1)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if depth < -1 {
		writeErr(w, r, http.StatusBadRequest, "depth must be -1 (unlimited) or >= 0")
		return
	}
	rs, _, ok := runMine(s, w, r, "imp", func(ctx context.Context) ([]rules.Implication, core.Stats, error) {
		opts := core.Options{MinSupport: p.minSupport, Hooks: s.hooks, MemBudgetBytes: s.cfg.MemBudgetBytes, Ctx: ctx}
		return s.mineImpMem(m, core.FromPercent(p.threshold), opts, p.workers)
	})
	if !ok {
		return
	}
	groups, ok := rules.ExpandByLabel(rs, m, keyword, depth)
	if !ok {
		writeErr(w, r, http.StatusNotFound, "keyword %q is not a column label", keyword)
		return
	}
	out := make([]ExpandGroupWire, 0, len(groups))
	for _, g := range groups {
		gw := ExpandGroupWire{From: m.Label(g.From)}
		for _, rule := range g.Rules {
			gw.Rules = append(gw.Rules, ImplicationWire{
				From: m.Label(rule.From), To: m.Label(rule.To),
				Confidence: rule.Confidence(), Hits: rule.Hits, Ones: rule.Ones,
			})
		}
		out = append(out, gw)
	}
	writeJSON(w, http.StatusOK, out)
}

type params struct {
	threshold  int
	minSupport int
	limit      int
	workers    int
	prefilter  bool
	fleet      bool
	// shard is set only by the fleet shard handler: it restricts rule
	// ownership to a column range and — via paramsKey — keys the cache
	// so a partial result can never alias a full-mine entry.
	shard *core.ShardRange
}

// maxWorkers caps the workers query parameter: mining goroutines are
// cheap but a request must not be able to ask for thousands of them.
const maxWorkers = 128

func mineParams(r *http.Request) (params, error) {
	p := params{threshold: 85, limit: 100}
	var err error
	if p.threshold, err = intParam(r, "threshold", 85); err != nil {
		return p, err
	}
	if p.threshold < 1 || p.threshold > 100 {
		return p, fmt.Errorf("threshold %d outside [1,100]", p.threshold)
	}
	if p.minSupport, err = intParam(r, "minsupport", 0); err != nil {
		return p, err
	}
	if p.minSupport < 0 {
		return p, fmt.Errorf("minsupport must be >= 0")
	}
	if p.limit, err = intParam(r, "limit", 100); err != nil {
		return p, err
	}
	if p.limit <= 0 {
		return p, fmt.Errorf("limit must be positive")
	}
	if p.workers, err = intParam(r, "workers", 1); err != nil {
		return p, err
	}
	if p.workers < 0 || p.workers > maxWorkers {
		return p, fmt.Errorf("workers %d outside [0,%d] (0 = one per CPU)", p.workers, maxWorkers)
	}
	if p.prefilter, err = boolParam(r, "prefilter"); err != nil {
		return p, err
	}
	if p.fleet, err = boolParam(r, "fleet"); err != nil {
		return p, err
	}
	return p, nil
}

// boolParam parses an optional boolean query parameter; absent means
// false, anything other than 0/1/true/false is a client error.
func boolParam(r *http.Request, name string) (bool, error) {
	switch v := r.URL.Query().Get(name); v {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	default:
		return false, fmt.Errorf("bad %s parameter %q (want 0/1/true/false)", name, v)
	}
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", name, v)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The header is gone; nothing more to do than drop the conn.
		_ = err
	}
}

// setRetryAfter stamps the whole-seconds Retry-After header: every 503
// this server writes carries one, so fleet coordinators and external
// clients back off uniformly instead of special-casing admission sheds.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	w.Header().Set("Retry-After", strconv.FormatInt(int64(d/time.Second), 10))
}

// writeErr emits the structured error body {"error", "request_id"}:
// machine-readable, and the id lets a client report a failure the
// operator can match to the trace logs.
func writeErr(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	if id := obs.RequestID(r.Context()); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, status, body)
}

// LoadStore registers every dataset in Config.Store's recovered
// catalog: blobs at or above Config.StreamMinBytes stay on disk and
// mine through the out-of-core engine; the rest load into memory with
// their labels. Call after Open has replayed the journal and before
// SetReady(true).
func (s *Server) LoadStore() error {
	if s.st == nil {
		return nil
	}
	for _, e := range s.st.List() {
		if s.cfg.StreamMinBytes > 0 && e.Size >= s.cfg.StreamMinBytes {
			if err := s.AddFile(e.Name, e.Path); err != nil {
				return fmt.Errorf("registering stored dataset %q as streamed: %w", e.Name, err)
			}
			s.mu.Lock()
			s.datasets[e.Name].info.Durable = true
			s.datasets[e.Name].hash = e.Hash
			s.mu.Unlock()
			continue
		}
		m, err := s.st.Load(e.Name)
		if err != nil {
			return fmt.Errorf("loading stored dataset %q: %w", e.Name, err)
		}
		inf := info(e.Name, m)
		inf.Durable = true
		s.add(e.Name, &dataset{m: m, info: inf, hash: e.Hash})
	}
	return nil
}

// LoadDir loads every matrix file in dir into the server, named by the
// file's base name without extension. Unknown extensions are skipped.
// When Config.StreamMinBytes is set, .dmt/.dmb files at or above that
// size are registered file-backed instead of loaded: their rows stay on
// disk and mining requests stream them through the out-of-core engine.
func (s *Server) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext != matrix.ExtText && ext != matrix.ExtBinary && ext != matrix.ExtBasket {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ext)
		path := filepath.Join(dir, e.Name())
		if s.cfg.StreamMinBytes > 0 && ext != matrix.ExtBasket {
			fi, err := e.Info()
			if err != nil {
				return fmt.Errorf("loading %s: %w", e.Name(), err)
			}
			if fi.Size() >= s.cfg.StreamMinBytes {
				if err := s.AddFile(name, path); err != nil {
					return fmt.Errorf("registering %s as streamed: %w", e.Name(), err)
				}
				continue
			}
		}
		m, err := matrix.Load(path)
		if err != nil {
			return fmt.Errorf("loading %s: %w", e.Name(), err)
		}
		s.Add(name, m)
	}
	return nil
}
