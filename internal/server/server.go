// Package server exposes the miners over HTTP/JSON — the serving layer
// behind cmd/dmcserve. Datasets are held in memory by name; every
// mining endpoint runs the exact DMC pipelines, so the service inherits
// the library's no-false-positives / no-false-negatives guarantee.
//
// Endpoints (all JSON unless noted):
//
//	GET  /v1/healthz
//	GET  /v1/datasets
//	PUT  /v1/datasets/{name}           body: basket lines (text/plain)
//	GET  /v1/datasets/{name}
//	GET  /v1/datasets/{name}/implications?threshold=85&minsupport=0&limit=100
//	GET  /v1/datasets/{name}/similarities?threshold=70&minsupport=0&limit=100
//	GET  /v1/datasets/{name}/expand?keyword=polgar&threshold=85&depth=-1
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dmc/internal/core"
	"dmc/internal/matrix"
	"dmc/internal/rules"
)

// maxUploadBytes caps PUT bodies.
const maxUploadBytes = 64 << 20

// Server is the HTTP handler. The zero value is not usable; construct
// with New.
type Server struct {
	mu       sync.RWMutex
	datasets map[string]*matrix.Matrix
}

// New returns an empty server.
func New() *Server {
	return &Server{datasets: make(map[string]*matrix.Matrix)}
}

// Add registers (or replaces) a dataset under the given name.
func (s *Server) Add(name string, m *matrix.Matrix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[name] = m
}

// get returns the named dataset.
func (s *Server) get(name string) (*matrix.Matrix, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.datasets[name]
	return m, ok
}

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/datasets", s.handleList)
	mux.HandleFunc("PUT /v1/datasets/{name}", s.handlePut)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleDescribe)
	mux.HandleFunc("GET /v1/datasets/{name}/implications", s.handleImplications)
	mux.HandleFunc("GET /v1/datasets/{name}/similarities", s.handleSimilarities)
	mux.HandleFunc("GET /v1/datasets/{name}/expand", s.handleExpand)
	return mux
}

// DatasetInfo is the wire form of a dataset summary.
type DatasetInfo struct {
	Name    string `json:"name"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Ones    int    `json:"ones"`
	Labeled bool   `json:"labeled"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	out := make([]DatasetInfo, 0, len(s.datasets))
	for name, m := range s.datasets {
		out = append(out, info(name, m))
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func info(name string, m *matrix.Matrix) DatasetInfo {
	return DatasetInfo{Name: name, Rows: m.NumRows(), Cols: m.NumCols(), Ones: m.NumOnes(), Labeled: m.Labels() != nil}
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if strings.TrimSpace(name) == "" {
		writeErr(w, http.StatusBadRequest, "empty dataset name")
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	m, err := matrix.ReadBaskets(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parsing baskets: %v", err)
		return
	}
	if m.NumRows() == 0 || m.NumOnes() == 0 {
		writeErr(w, http.StatusBadRequest, "dataset has no transactions")
		return
	}
	s.Add(name, m)
	writeJSON(w, http.StatusCreated, info(name, m))
}

func (s *Server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, ok := s.get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	writeJSON(w, http.StatusOK, info(name, m))
}

// ImplicationWire is the wire form of an implication rule.
type ImplicationWire struct {
	From       string  `json:"from"`
	To         string  `json:"to"`
	Confidence float64 `json:"confidence"`
	Hits       int     `json:"hits"`
	Ones       int     `json:"ones"`
}

// MineResponse wraps a mined rule list with run metadata.
type MineResponse[R any] struct {
	Dataset   string `json:"dataset"`
	Threshold int    `json:"threshold_percent"`
	Total     int    `json:"total_rules"`
	Truncated bool   `json:"truncated"`
	ElapsedMS int64  `json:"elapsed_ms"`
	Rules     []R    `json:"rules"`
}

func (s *Server) handleImplications(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, ok := s.get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	p, err := mineParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	rs, st := core.DMCImp(m, core.FromPercent(p.threshold), core.Options{MinSupport: p.minSupport})
	sort.Slice(rs, func(i, j int) bool { return rs[i].Confidence() > rs[j].Confidence() })
	resp := MineResponse[ImplicationWire]{
		Dataset: name, Threshold: p.threshold, Total: len(rs), ElapsedMS: st.Total.Milliseconds(),
	}
	for i, rule := range rs {
		if i == p.limit {
			resp.Truncated = true
			break
		}
		resp.Rules = append(resp.Rules, ImplicationWire{
			From: m.Label(rule.From), To: m.Label(rule.To),
			Confidence: rule.Confidence(), Hits: rule.Hits, Ones: rule.Ones,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// SimilarityWire is the wire form of a similarity rule.
type SimilarityWire struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Similarity float64 `json:"similarity"`
	Hits       int     `json:"hits"`
	OnesA      int     `json:"ones_a"`
	OnesB      int     `json:"ones_b"`
}

func (s *Server) handleSimilarities(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, ok := s.get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	p, err := mineParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	rs, st := core.DMCSim(m, core.FromPercent(p.threshold), core.Options{MinSupport: p.minSupport})
	sort.Slice(rs, func(i, j int) bool { return rs[i].Value() > rs[j].Value() })
	resp := MineResponse[SimilarityWire]{
		Dataset: name, Threshold: p.threshold, Total: len(rs), ElapsedMS: st.Total.Milliseconds(),
	}
	for i, rule := range rs {
		if i == p.limit {
			resp.Truncated = true
			break
		}
		resp.Rules = append(resp.Rules, SimilarityWire{
			A: m.Label(rule.A), B: m.Label(rule.B),
			Similarity: rule.Value(), Hits: rule.Hits, OnesA: rule.OnesA, OnesB: rule.OnesB,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExpandGroupWire is one antecedent's rules in an expansion response.
type ExpandGroupWire struct {
	From  string            `json:"from"`
	Rules []ImplicationWire `json:"rules"`
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, ok := s.get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	if m.Labels() == nil {
		writeErr(w, http.StatusBadRequest, "dataset %q has no labels", name)
		return
	}
	keyword := r.URL.Query().Get("keyword")
	if keyword == "" {
		writeErr(w, http.StatusBadRequest, "missing keyword parameter")
		return
	}
	p, err := mineParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	depth, err := intParam(r, "depth", -1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	rs, _ := core.DMCImp(m, core.FromPercent(p.threshold), core.Options{MinSupport: p.minSupport})
	groups, ok := rules.ExpandByLabel(rs, m, keyword, depth)
	if !ok {
		writeErr(w, http.StatusNotFound, "keyword %q is not a column label", keyword)
		return
	}
	out := make([]ExpandGroupWire, 0, len(groups))
	for _, g := range groups {
		gw := ExpandGroupWire{From: m.Label(g.From)}
		for _, rule := range g.Rules {
			gw.Rules = append(gw.Rules, ImplicationWire{
				From: m.Label(rule.From), To: m.Label(rule.To),
				Confidence: rule.Confidence(), Hits: rule.Hits, Ones: rule.Ones,
			})
		}
		out = append(out, gw)
	}
	writeJSON(w, http.StatusOK, out)
}

type params struct {
	threshold  int
	minSupport int
	limit      int
}

func mineParams(r *http.Request) (params, error) {
	p := params{threshold: 85, limit: 100}
	var err error
	if p.threshold, err = intParam(r, "threshold", 85); err != nil {
		return p, err
	}
	if p.threshold < 1 || p.threshold > 100 {
		return p, fmt.Errorf("threshold %d outside [1,100]", p.threshold)
	}
	if p.minSupport, err = intParam(r, "minsupport", 0); err != nil {
		return p, err
	}
	if p.limit, err = intParam(r, "limit", 100); err != nil {
		return p, err
	}
	if p.limit <= 0 {
		return p, fmt.Errorf("limit must be positive")
	}
	return p, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", name, v)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The header is gone; nothing more to do than drop the conn.
		_ = err
	}
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// LoadDir loads every matrix file in dir into the server, named by the
// file's base name without extension. Unknown extensions are skipped.
func (s *Server) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext != matrix.ExtText && ext != matrix.ExtBinary && ext != matrix.ExtBasket {
			continue
		}
		m, err := matrix.Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("loading %s: %w", e.Name(), err)
		}
		s.Add(strings.TrimSuffix(e.Name(), ext), m)
	}
	return nil
}
