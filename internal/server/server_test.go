package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmc/internal/matrix"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := New()
	m, err := matrix.ReadBaskets(strings.NewReader(
		"bread butter jam\nbread butter\nbread butter coffee\nbread butter jam\nbread coffee\ncoffee tea\nbread butter tea\njam bread butter\ncoffee\nbread butter jam coffee\n"))
	if err != nil {
		t.Fatal(err)
	}
	s.Add("baskets", m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	var got map[string]string
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &got)
	if got["status"] != "ok" {
		t.Fatalf("healthz = %v", got)
	}
}

func TestListAndDescribe(t *testing.T) {
	ts := testServer(t)
	var list []DatasetInfo
	getJSON(t, ts.URL+"/v1/datasets", http.StatusOK, &list)
	if len(list) != 1 || list[0].Name != "baskets" || !list[0].Labeled {
		t.Fatalf("list = %+v", list)
	}
	var one DatasetInfo
	getJSON(t, ts.URL+"/v1/datasets/baskets", http.StatusOK, &one)
	if one.Rows != 10 || one.Cols != 5 {
		t.Fatalf("describe = %+v", one)
	}
	getJSON(t, ts.URL+"/v1/datasets/nope", http.StatusNotFound, nil)
}

func TestMineImplicationsEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp MineResponse[ImplicationWire]
	getJSON(t, ts.URL+"/v1/datasets/baskets/implications?threshold=80", http.StatusOK, &resp)
	if resp.Total == 0 || len(resp.Rules) != resp.Total {
		t.Fatalf("resp = %+v", resp)
	}
	// The quickstart's known rule: butter => bread at 100%.
	found := false
	for _, r := range resp.Rules {
		if r.From == "butter" && r.To == "bread" && r.Confidence == 1.0 {
			found = true
		}
		if r.Confidence < 0.8 {
			t.Fatalf("rule below threshold: %+v", r)
		}
	}
	if !found {
		t.Fatalf("butter => bread missing: %+v", resp.Rules)
	}
	// Limits truncate.
	getJSON(t, ts.URL+"/v1/datasets/baskets/implications?threshold=80&limit=1", http.StatusOK, &resp)
	if len(resp.Rules) != 1 || !resp.Truncated {
		t.Fatalf("limit not applied: %+v", resp)
	}
}

func TestMineSimilaritiesEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp MineResponse[SimilarityWire]
	getJSON(t, ts.URL+"/v1/datasets/baskets/similarities?threshold=60", http.StatusOK, &resp)
	// Pairs come back rank-ordered: the rarer column (butter, 7 ones)
	// first, then bread (8 ones).
	if resp.Total != 1 || resp.Rules[0].A != "butter" || resp.Rules[0].B != "bread" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Rules[0].Similarity != 0.875 {
		t.Fatalf("similarity = %v, want 7/8", resp.Rules[0].Similarity)
	}
}

func TestExpandEndpoint(t *testing.T) {
	ts := testServer(t)
	var groups []ExpandGroupWire
	getJSON(t, ts.URL+"/v1/datasets/baskets/expand?keyword=jam&threshold=80", http.StatusOK, &groups)
	if len(groups) == 0 || groups[0].From != "jam" {
		t.Fatalf("groups = %+v", groups)
	}
	getJSON(t, ts.URL+"/v1/datasets/baskets/expand?keyword=caviar", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/v1/datasets/baskets/expand", http.StatusBadRequest, nil)
}

func TestPutDataset(t *testing.T) {
	ts := testServer(t)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/mine", strings.NewReader("x y\ny z\nx y z\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	var one DatasetInfo
	getJSON(t, ts.URL+"/v1/datasets/mine", http.StatusOK, &one)
	if one.Rows != 3 || one.Cols != 3 {
		t.Fatalf("uploaded dataset = %+v", one)
	}
	// Empty upload rejected.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/empty", strings.NewReader("# nothing\n"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty PUT status %d", resp.StatusCode)
	}
}

func TestBadParams(t *testing.T) {
	ts := testServer(t)
	for _, q := range []string{
		"threshold=0", "threshold=101", "threshold=abc", "limit=0", "limit=x", "minsupport=x",
	} {
		getJSON(t, ts.URL+"/v1/datasets/baskets/implications?"+q, http.StatusBadRequest, nil)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	m := matrix.FromRows(2, [][]matrix.Col{{0, 1}, {0}})
	if err := matrix.Save(filepath.Join(dir, "alpha.dmb"), m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("skip me"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New()
	if err := s.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.get("alpha"); !ok {
		t.Fatal("alpha not loaded")
	}
	if _, ok := s.get("notes"); ok {
		t.Fatal("non-matrix file loaded")
	}
	if err := s.LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
	// A corrupt matrix file must fail the load.
	if err := os.WriteFile(filepath.Join(dir, "bad.dmb"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New().LoadDir(dir); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

// TestStreamedDataset covers the file-backed serving path: LoadDir with
// StreamMinBytes registers a big matrix file without loading it, mining
// endpoints stream it from disk (any worker count) with the same rules
// as an in-memory mine, and expansion — which needs labels — is
// rejected with a 400.
func TestStreamedDataset(t *testing.T) {
	dir := t.TempDir()
	m := matrix.FromRows(6, [][]matrix.Col{
		{0, 1, 2}, {0, 1}, {0, 1, 4}, {2, 3}, {0, 1, 2}, {4, 5}, {0, 1},
	})
	if err := matrix.Save(filepath.Join(dir, "big.dmb"), m); err != nil {
		t.Fatal(err)
	}
	s := NewWith(Config{StreamMinBytes: 1})
	if err := s.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	s.Add("mem", m)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var list []DatasetInfo
	getJSON(t, ts.URL+"/v1/datasets", http.StatusOK, &list)
	if len(list) != 2 {
		t.Fatalf("list = %+v", list)
	}
	var big DatasetInfo
	getJSON(t, ts.URL+"/v1/datasets/big", http.StatusOK, &big)
	if !big.Streamed || big.Rows != m.NumRows() || big.Cols != m.NumCols() {
		t.Fatalf("big info = %+v", big)
	}

	var mem, streamed MineResponse[ImplicationWire]
	getJSON(t, ts.URL+"/v1/datasets/mem/implications?threshold=75", http.StatusOK, &mem)
	for _, w := range []string{"1", "2"} {
		getJSON(t, ts.URL+"/v1/datasets/big/implications?threshold=75&workers="+w, http.StatusOK, &streamed)
		if streamed.Total != mem.Total {
			t.Fatalf("workers=%s: streamed %d rules, in-memory %d", w, streamed.Total, mem.Total)
		}
	}
	var sim MineResponse[SimilarityWire]
	getJSON(t, ts.URL+"/v1/datasets/big/similarities?threshold=60&workers=2", http.StatusOK, &sim)
	if sim.Total == 0 {
		t.Fatal("streamed similarity mine returned no rules")
	}
	getJSON(t, ts.URL+"/v1/datasets/big/expand?keyword=c0", http.StatusBadRequest, nil)
}

// The workers parameter routes to the parallel pipeline, which must
// return the same rules; 0 means one worker per CPU, out-of-range
// values are rejected.
func TestMineWorkersParam(t *testing.T) {
	ts := testServer(t)
	var serial MineResponse[ImplicationWire]
	getJSON(t, ts.URL+"/v1/datasets/baskets/implications?threshold=80", http.StatusOK, &serial)
	for _, w := range []string{"0", "2", "8"} {
		var par MineResponse[ImplicationWire]
		getJSON(t, ts.URL+"/v1/datasets/baskets/implications?threshold=80&workers="+w, http.StatusOK, &par)
		if par.Total != serial.Total {
			t.Fatalf("workers=%s: %d rules, serial %d", w, par.Total, serial.Total)
		}
	}
	var sim MineResponse[SimilarityWire]
	getJSON(t, ts.URL+"/v1/datasets/baskets/similarities?threshold=60&workers=2", http.StatusOK, &sim)
	if sim.Total == 0 {
		t.Fatal("parallel similarity mine returned no rules")
	}
	getJSON(t, ts.URL+"/v1/datasets/baskets/implications?workers=-1", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/datasets/baskets/implications?workers=129", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/datasets/baskets/implications?workers=x", http.StatusBadRequest, nil)
}
