package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmc/internal/core"
	"dmc/internal/fault"
	"dmc/internal/matrix"
	"dmc/internal/rules"
	"dmc/internal/store"
)

func mustParseBaskets(t *testing.T, text string) *matrix.Matrix {
	t.Helper()
	m, err := matrix.ReadBaskets(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func openTestStore(t *testing.T, dir string, opts store.Options) *store.Store {
	t.Helper()
	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestPutPersistsAcrossRestart: a dataset uploaded to a store-backed
// server survives a full restart — new store handle, new server,
// LoadStore — and serves identical mines from the recovered blob.
func TestPutPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, store.Options{})
	s := NewWith(Config{Store: st})
	ts := httptest.NewServer(s.Handler())

	var inf DatasetInfo
	resp := doPut(t, ts.URL, "groceries", "bread butter jam\nbread butter\nbread butter coffee\n")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: status %d, want 201", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/v1/datasets/groceries", http.StatusOK, &inf)
	if !inf.Durable {
		t.Fatalf("store-backed upload not marked durable: %+v", inf)
	}
	var before MineResponse[ImplicationWire]
	getJSON(t, ts.URL+"/v1/datasets/groceries/implications?threshold=60", http.StatusOK, &before)
	if before.Total == 0 {
		t.Fatal("pre-restart mine found no rules; the identity check below is vacuous")
	}
	ts.Close()
	st.Close()

	// "Restart": fresh store over the same directory, fresh server.
	st2 := openTestStore(t, dir, store.Options{})
	s2 := NewWith(Config{Store: st2})
	s2.SetReady(false)
	if err := s2.LoadStore(); err != nil {
		t.Fatal(err)
	}
	s2.SetReady(true)
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	getJSON(t, ts2.URL+"/v1/datasets/groceries", http.StatusOK, &inf)
	if !inf.Durable || inf.Rows != 3 || !inf.Labeled {
		t.Fatalf("recovered dataset info = %+v", inf)
	}
	var after MineResponse[ImplicationWire]
	getJSON(t, ts2.URL+"/v1/datasets/groceries/implications?threshold=60", http.StatusOK, &after)
	if after.Total != before.Total {
		t.Fatalf("mine over recovered dataset: %d rules, want %d", after.Total, before.Total)
	}
	// Labels survived the blob round-trip: rules name real columns.
	for _, rule := range after.Rules {
		if strings.HasPrefix(rule.From, "c") && rule.From != "coffee" {
			t.Fatalf("recovered rule lost its label: %+v", rule)
		}
	}
}

// TestLoadStoreStreamsBigBlobs: catalog entries at or above
// StreamMinBytes come back file-backed (streamed from the blob), not
// resident.
func TestLoadStoreStreamsBigBlobs(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, store.Options{})
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("alpha beta gamma delta\n")
	}
	s := NewWith(Config{Store: st})
	ts := httptest.NewServer(s.Handler())
	if resp := doPut(t, ts.URL, "big", sb.String()); resp.StatusCode != http.StatusCreated {
		t.Fatal("PUT big failed")
	}
	if resp := doPut(t, ts.URL, "small", "x y\nx y\n"); resp.StatusCode != http.StatusCreated {
		t.Fatal("PUT small failed")
	}
	ts.Close()
	st.Close()

	st2 := openTestStore(t, dir, store.Options{})
	e, ok := st2.Get("big")
	if !ok {
		t.Fatal("big lost")
	}
	s2 := NewWith(Config{Store: st2, StreamMinBytes: e.Size}) // big streams, small loads
	if err := s2.LoadStore(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	var big, small DatasetInfo // separate vars: omitempty fields would leak across a reused decode target
	getJSON(t, ts2.URL+"/v1/datasets/big", http.StatusOK, &big)
	if !big.Streamed || !big.Durable {
		t.Fatalf("big = %+v, want streamed+durable", big)
	}
	getJSON(t, ts2.URL+"/v1/datasets/small", http.StatusOK, &small)
	if small.Streamed || !small.Durable || !small.Labeled {
		t.Fatalf("small = %+v, want resident+durable", small)
	}
	// The streamed dataset still mines (through the out-of-core engine).
	var mr MineResponse[ImplicationWire]
	getJSON(t, ts2.URL+"/v1/datasets/big/implications?threshold=90", http.StatusOK, &mr)
	if mr.Total == 0 {
		t.Fatal("streamed recovered dataset mined no rules")
	}
}

// TestPutStreamsBigBlobs: a store-backed upload at or above
// StreamMinBytes is registered file-backed from its committed blob at
// PUT time — the same routing LoadStore applies at boot — instead of
// sitting resident (an OOM risk) until the next restart re-routes it.
func TestPutStreamsBigBlobs(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, store.Options{})
	s := NewWith(Config{Store: st, StreamMinBytes: 1}) // everything streams
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if resp := doPut(t, ts.URL, "big", "alpha beta\nalpha beta\nalpha gamma\n"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: status %d, want 201", resp.StatusCode)
	}
	var inf DatasetInfo
	getJSON(t, ts.URL+"/v1/datasets/big", http.StatusOK, &inf)
	if !inf.Streamed || !inf.Durable {
		t.Fatalf("PUT-time info = %+v, want streamed+durable", inf)
	}
	d, ok := s.get("big")
	if !ok || d.m != nil || d.path == "" {
		t.Fatal("upload at StreamMinBytes was registered resident, want file-backed")
	}
	// The file-backed upload mines through the out-of-core engine.
	var mr MineResponse[ImplicationWire]
	getJSON(t, ts.URL+"/v1/datasets/big/implications?threshold=60", http.StatusOK, &mr)
	if mr.Total == 0 {
		t.Fatal("streamed upload mined no rules")
	}
}

// TestBudgetErrorSurvivesFailedSpill: when a budget-overflow degrade
// cannot even spill the matrix, the surfaced error must still carry the
// triggering *core.BudgetError (so the client learns the mine
// overflowed its budget), joined with the spill failure.
func TestBudgetErrorSurvivesFailedSpill(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, store.Options{})
	s := NewWith(Config{Store: st})
	s.mineImp = func(*matrix.Matrix, core.Threshold, core.Options, int) ([]rules.Implication, core.Stats, error) {
		return nil, core.Stats{}, &core.BudgetError{Bytes: 2, Budget: 1}
	}
	// Kill the spill: the scratch directory is gone, so MkdirTemp fails.
	if err := os.RemoveAll(st.ScratchDir()); err != nil {
		t.Fatal(err)
	}
	m := mustParseBaskets(t, "a b\na b\n")
	_, _, err := s.mineImpMem(m, core.FromPercent(80), core.Options{}, 1)
	if err == nil {
		t.Fatal("failed spill reported success")
	}
	var be *core.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("triggering budget error lost from the chain: %v", err)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("spill failure lost from the chain: %v", err)
	}
}

// TestPutENOSPCIs507: a full disk during the durable commit surfaces as
// 507 Insufficient Storage with the structured error body — and the
// dataset is not served, because a dataset the store could not commit
// would vanish on restart.
func TestPutENOSPCIs507(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(fault.Scenario{FailWriteAt: 1, ENOSPC: true, FailForever: true, PathContains: "blobs"})
	st := openTestStore(t, dir, store.Options{FS: in})
	s := NewWith(Config{Store: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp := doPut(t, ts.URL, "doomed", "x y\nx y\n")
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("PUT on full disk: status %d, want 507", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/v1/datasets/doomed", http.StatusNotFound, nil)
}

// TestStoreScratchRoutesSpills: with a store configured, degrade spills
// land in the store's scratch directory (swept at boot), not the OS
// temp dir.
func TestStoreScratchRoutesSpills(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, store.Options{})
	s := NewWith(Config{Store: st})
	if got := s.scratchDir(); got != st.ScratchDir() {
		t.Fatalf("scratchDir = %q, want %q", got, st.ScratchDir())
	}
	m := mustParseBaskets(t, "a b\na b\n")
	path, cleanup, err := spillResident(m, s.scratchDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	rel, err := filepath.Rel(st.ScratchDir(), path)
	if err != nil || strings.HasPrefix(rel, "..") {
		t.Fatalf("spill %q escaped the store scratch dir %q", path, st.ScratchDir())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// TestPutCorruptStoreIs503: a poisoned journal (unrepairable append
// failure) maps to 503 — the replica needs a restart, the client
// should go elsewhere — not a 500.
func TestPutCorruptStoreIs503(t *testing.T) {
	dir := t.TempDir()
	// Create the journal on a healthy disk first: the scenario tears
	// every CATALOG write, which would otherwise kill the header write
	// at Open before any request runs.
	pre := openTestStore(t, dir, store.Options{})
	pre.Close()
	in := fault.NewInjector(fault.Scenario{PartialWriteEvery: 1, PathContains: "CATALOG"})
	st := openTestStore(t, dir, store.Options{FS: in})
	s := NewWith(Config{Store: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// First PUT tears the journal append and the inline repair: the
	// store poisons itself.
	resp := doPut(t, ts.URL, "first", "x y\nx y\n")
	if resp.StatusCode != http.StatusInternalServerError && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("PUT under torn journal: status %d, want 5xx", resp.StatusCode)
	}
	// Every later PUT sees the poisoned store: 503, go elsewhere.
	resp = doPut(t, ts.URL, "second", "p q\np q\n")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("PUT on poisoned store: status %d, want 503", resp.StatusCode)
	}
	if _, err := st.Put("direct", mustParseBaskets(t, "a b\n")); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("store not actually poisoned: %v", err)
	}
}
