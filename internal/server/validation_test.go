package server

import (
	"net/http"
	"testing"
)

// TestMineParamValidation sweeps every mining endpoint with every
// malformed query parameter and asserts a structured 400 — the same
// {"error", "request_id"} body everywhere, never a 500 and never a
// silently-defaulted value.
func TestMineParamValidation(t *testing.T) {
	ts := testServer(t)
	endpoints := []string{
		"/v1/datasets/baskets/implications",
		"/v1/datasets/baskets/similarities",
		"/v1/datasets/baskets/expand?keyword=bread",
	}
	bad := []string{
		"threshold=0", "threshold=101", "threshold=-5", "threshold=abc", "threshold=1e3",
		"minsupport=-1", "minsupport=xyz",
		"limit=0", "limit=-10", "limit=garbage",
		"workers=-1", "workers=129", "workers=nope",
	}
	for _, ep := range endpoints {
		sep := "?"
		if len(ep) > 0 && ep[len(ep)-1] != '?' {
			for _, c := range ep {
				if c == '?' {
					sep = "&"
				}
			}
		}
		for _, q := range bad {
			url := ts.URL + ep + sep + q
			var body map[string]string
			getJSON(t, url, http.StatusBadRequest, &body)
			if body["error"] == "" || body["request_id"] == "" {
				t.Errorf("%s: 400 body not structured: %v", ep+sep+q, body)
			}
		}
	}

	// Expand-only parameters.
	for _, q := range []string{"depth=-2", "depth=abc", ""} { // "" = missing keyword
		url := ts.URL + "/v1/datasets/baskets/expand?keyword=bread&" + q
		if q == "" {
			url = ts.URL + "/v1/datasets/baskets/expand"
		}
		var body map[string]string
		getJSON(t, url, http.StatusBadRequest, &body)
		if body["error"] == "" || body["request_id"] == "" {
			t.Errorf("expand %q: 400 body not structured: %v", q, body)
		}
	}

	// The boundaries themselves are valid: no off-by-one rejections.
	for _, q := range []string{
		"threshold=1", "threshold=100", "minsupport=0", "limit=1", "workers=0", "workers=128",
	} {
		getJSON(t, ts.URL+"/v1/datasets/baskets/implications?"+q, http.StatusOK, nil)
	}
	getJSON(t, ts.URL+"/v1/datasets/baskets/expand?keyword=bread&depth=-1", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/datasets/baskets/expand?keyword=bread&depth=0", http.StatusOK, nil)
}
