package store

import (
	"errors"
	"syscall"
	"testing"

	"dmc/internal/fault"
)

// TestStoreFaultMatrix drives the store through injected failures at
// every stage of the commit protocol — blob write, blob fsync, journal
// append, journal fsync — and asserts the contract the serving layer
// depends on: a failed Put returns an error and changes nothing; a
// reopened store (healthy disk) recovers exactly the committed
// datasets with no tmp debris; and when the scenario is one-shot, the
// very next Put succeeds (for journal failures, via the inline repair
// that rewrites the journal from the live set).
func TestStoreFaultMatrix(t *testing.T) {
	cases := []struct {
		name      string
		sc        fault.Scenario
		wantNOSPC bool // the surfaced error must carry ENOSPC
		permanent bool // the store stays unwritable until reopened
	}{
		{name: "blob-write-enospc",
			sc:        fault.Scenario{FailWriteAt: 1, ENOSPC: true, PathContains: "blobs"},
			wantNOSPC: true},
		{name: "blob-write-enospc-forever",
			sc:        fault.Scenario{FailWriteAt: 1, ENOSPC: true, FailForever: true, PathContains: "blobs"},
			wantNOSPC: true, permanent: true},
		{name: "blob-sync-fails",
			sc: fault.Scenario{FailSyncAt: 1, PathContains: "blobs"}},
		// Sync #2 under blobs/ is the directory fsync that makes the
		// labels rename durable: its failure must fail the Put cleanly.
		{name: "blob-dirsync-fails",
			sc: fault.Scenario{FailSyncAt: 2, PathContains: "blobs"}},
		{name: "blob-sync-fails-forever",
			sc:        fault.Scenario{FailSyncAt: 1, FailForever: true, PathContains: "blobs"},
			permanent: true},
		{name: "journal-write-fails",
			sc: fault.Scenario{FailWriteAt: 1, PathContains: "CATALOG"}},
		{name: "journal-sync-fails",
			sc: fault.Scenario{FailSyncAt: 1, PathContains: "CATALOG"}},
		{name: "journal-enospc",
			sc:        fault.Scenario{FailWriteAt: 1, ENOSPC: true, PathContains: "CATALOG"},
			wantNOSPC: true},
		// Every CATALOG write tears: the append tears AND the inline
		// repair tears, so the store must poison itself (ErrCorrupt on
		// later mutations) rather than risk a journal that lies.
		{name: "torn-journal-writes-forever",
			sc:        fault.Scenario{PartialWriteEvery: 1, PathContains: "CATALOG"},
			permanent: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			// Commit a baseline dataset on a healthy disk.
			s := openStore(t, dir, Options{})
			if _, err := s.Put("stable", mustBaskets(t, "a b\na c\n")); err != nil {
				t.Fatal(err)
			}
			s.Close()

			// Reopen with the scenario armed and attempt a Put. The
			// injector counters start now, so the failure lands inside
			// this Put's commit protocol.
			in := fault.NewInjector(tc.sc)
			f, err := Open(dir, Options{FS: in})
			if err != nil {
				t.Fatalf("open under scenario (replay is read-only): %v", err)
			}
			_, perr := f.Put("victim", mustBaskets(t, "x y\nx z\n"))
			if perr == nil {
				t.Fatal("Put under injected failure reported success")
			}
			if !errors.Is(perr, fault.ErrInjected) {
				t.Fatalf("error lost the injection sentinel: %v", perr)
			}
			if tc.wantNOSPC && !errors.Is(perr, syscall.ENOSPC) {
				t.Fatalf("want ENOSPC surfaced, got %v", perr)
			}
			if _, ok := f.Get("victim"); ok {
				t.Fatal("failed Put is visible in the catalog")
			}

			// One-shot scenarios: the disk recovered, the next Put must
			// go through on the same handle (journal failures exercise
			// the inline torn-tail repair here).
			if !tc.permanent {
				if _, err := f.Put("retry", mustBaskets(t, "p q\n")); err != nil {
					t.Fatalf("Put after one-shot fault: %v", err)
				}
			}
			f.Close()

			// A restart on a healthy disk recovers exactly the
			// committed set, with no tmp debris anywhere.
			r := openStore(t, dir, Options{})
			if _, ok := r.Get("stable"); !ok {
				t.Fatal("committed dataset lost")
			}
			if _, ok := r.Get("victim"); ok {
				t.Fatal("uncommitted dataset survived recovery")
			}
			if !tc.permanent {
				if _, ok := r.Get("retry"); !ok {
					t.Fatal("post-fault Put lost after recovery")
				}
			}
			if m, err := r.Load("stable"); err != nil || m.NumRows() != 2 {
				t.Fatalf("recovered stable: m=%v err=%v", m, err)
			}
			assertNoTmpDebris(t, dir)
		})
	}
}

// TestStorePoisonedRefusesMutations: once an append failure cannot be
// repaired, the store must refuse further mutations with ErrCorrupt
// instead of appending after a torn frame — reads stay available.
func TestStorePoisonedRefusesMutations(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if _, err := s.Put("stable", mustBaskets(t, "a b\n")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	in := fault.NewInjector(fault.Scenario{PartialWriteEvery: 1, PathContains: "CATALOG"})
	f, err := Open(dir, Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Put("victim", mustBaskets(t, "x y\n")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unrepairable append: err = %v, want ErrCorrupt in chain", err)
	}
	if _, err := f.Put("again", mustBaskets(t, "p q\n")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("poisoned store accepted a Put: %v", err)
	}
	if err := f.Delete("stable"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("poisoned store accepted a Delete: %v", err)
	}
	// Reads still serve the last good catalog.
	if _, ok := f.Get("stable"); !ok {
		t.Fatal("poisoned store lost read access to committed data")
	}
}

// TestStoreFaultCompaction kills the snapshot write itself: compaction
// is an optimization, so a Put whose journal record already committed
// must report success despite the compaction failure, and recovery
// must still see every committed dataset.
func TestStoreFaultCompaction(t *testing.T) {
	dir := t.TempDir()
	// CATALOG.tmp is only written by compaction, so the scenario fires
	// there and nowhere else.
	in := fault.NewInjector(fault.Scenario{FailSyncAt: 1, FailForever: true, PathContains: "CATALOG.tmp"})
	s, err := Open(dir, Options{FS: in, CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Put("churn", mustBaskets(t, "a b\n")); err != nil {
			t.Fatalf("put %d: %v (compaction failure must not fail a committed Put)", i, err)
		}
		if _, err := s.Put("other", mustBaskets(t, "x y\n")); err != nil {
			t.Fatalf("put other %d: %v", i, err)
		}
	}
	s.Close()
	r := openStore(t, dir, Options{})
	if _, ok := r.Get("churn"); !ok {
		t.Fatal("churn lost")
	}
	if _, ok := r.Get("other"); !ok {
		t.Fatal("other lost")
	}
	assertNoTmpDebris(t, dir)
}
