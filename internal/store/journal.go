package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"dmc/internal/fault"
)

// The CATALOG journal is the store's commit log: one CRC-framed JSON
// record per catalog mutation, appended and fsynced before the caller
// sees success. Replay at boot folds the records in order; the last
// record for a name wins. The frame CRC (Castagnoli, like the spill
// block codec) makes a torn tail — the signature of a crash mid-append
// — detectable instead of silently corrupting every later record:
// replay stops at the first bad frame, trusts everything before it,
// and the store rewrites the journal from the live set. Repair is
// reserved for genuine tail tears; damage a tear cannot explain (bad
// magic, a bad frame followed by valid ones, checksummed garbage)
// fails Open with ErrCorrupt rather than discarding committed records.
//
// Layout:
//
//	8-byte magic "DMCCAT01"
//	repeat: uint32 LE payload length | uint32 LE crc32c(payload) | payload

var journalMagic = []byte("DMCCAT01")

// maxRecordBytes bounds one journal record; a length field beyond it is
// corruption (or an incompatible format), not a huge record.
const maxRecordBytes = 1 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is one catalog mutation. Op "put" upserts a dataset; "del"
// removes it. Blob paths are relative to the store root so the data
// directory can be moved wholesale.
type record struct {
	Op      string `json:"op"`
	Name    string `json:"name"`
	Blob    string `json:"blob,omitempty"`
	Rows    int    `json:"rows,omitempty"`
	Cols    int    `json:"cols,omitempty"`
	Ones    int    `json:"ones,omitempty"`
	Labeled bool   `json:"labeled,omitempty"`
	Size    int64  `json:"size,omitempty"`
}

// frameRecord encodes rec as one CRC-framed journal frame.
func frameRecord(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	return frame, nil
}

// writeJournalHeader emits the magic at the start of a fresh journal.
func writeJournalHeader(w io.Writer) error {
	_, err := w.Write(journalMagic)
	return err
}

// replayJournal reads the journal at path and folds its records into
// the live catalog. torn reports a detected torn TAIL — a crash
// mid-append, the only damage repair is allowed to discard (the records
// before it are trusted and returned). Anything a tear cannot produce —
// a wrong magic on a non-empty journal, a bad frame with structurally
// valid frames after it, a CRC-valid frame holding garbage — is
// mid-file corruption or a foreign/incompatible store, and replay fails
// with ErrCorrupt so Open never "repairs" away committed records (and
// never GCs the blobs they reference). A missing file is an empty
// journal. total counts the records read, so the caller can decide
// whether compaction is due.
func replayJournal(fs fault.FS, path string) (live map[string]record, total int, torn bool, err error) {
	live = make(map[string]record)
	f, err := fs.Open(path)
	if err != nil {
		if isNotExist(err) {
			return live, 0, false, nil
		}
		return nil, 0, false, err
	}
	defer f.Close()
	data, err := io.ReadAll(fault.NewRetryReader(nil, f, fault.RetryPolicy{}))
	if err != nil {
		return nil, 0, false, fmt.Errorf("store: reading journal: %w", err)
	}
	if len(data) == 0 {
		return live, 0, false, nil
	}
	if len(data) < len(journalMagic) || !bytes.Equal(data[:len(journalMagic)], journalMagic) {
		if len(data) < len(journalMagic) && bytes.Equal(data, journalMagic[:len(data)]) {
			// A torn header from a crash during journal creation:
			// nothing trustworthy follows, and nothing was lost.
			return live, 0, true, nil
		}
		// A full-length header that is not ours (or a short prefix that
		// never was ours): a foreign or incompatible journal, not a
		// tear. Repairing would destroy whatever this file really is.
		return nil, 0, false, fmt.Errorf("store: journal %s: bad magic: %w", path, ErrCorrupt)
	}
	off := len(journalMagic)
	for off < len(data) {
		bad := func(what string) (map[string]record, int, bool, error) {
			if nextValidFrame(data, off+1) {
				// Valid frames continue past the damage, which a crash
				// mid-append cannot produce: this is mid-file corruption
				// and the records after it are committed data that
				// truncate-and-repair would destroy.
				return nil, 0, false, fmt.Errorf(
					"store: journal %s: %s at offset %d with valid frames after it: %w",
					path, what, off, ErrCorrupt)
			}
			return live, total, true, nil
		}
		if len(data)-off < 8 {
			return bad("torn frame header")
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 {
			// frameRecord never writes an empty payload, but an all-zeros
			// header would pass the CRC check below (crc32c("") == 0).
			// Zeros here are the zero-filled tail some filesystems leave
			// after a crash — a tear, unless real frames follow.
			return bad("zero-length frame")
		}
		if n > maxRecordBytes || len(data)-off-8 < n {
			return bad("torn or garbage length")
		}
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return bad("bad frame checksum")
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The CRC matched, so these bytes were written whole — a tear
			// cannot leave a checksummed frame of garbage. A frame we
			// cannot parse is a newer format or foreign data.
			return nil, 0, false, fmt.Errorf(
				"store: journal %s: unparseable record at offset %d: %w", path, off, ErrCorrupt)
		}
		total++
		switch rec.Op {
		case "put":
			live[rec.Name] = rec
		case "del":
			delete(live, rec.Name)
		}
		off += 8 + n
	}
	return live, total, false, nil
}

// nextValidFrame reports whether a structurally valid frame (sane
// length, matching CRC, parseable record) starts anywhere at or after
// off. A crash tears the journal once, at the end — so a valid frame
// after a bad one is proof of mid-file corruption, not a tail tear.
func nextValidFrame(data []byte, off int) bool {
	for i := off; i+8 <= len(data); i++ {
		n := int(binary.LittleEndian.Uint32(data[i : i+4]))
		if n > maxRecordBytes || i+8+n > len(data) {
			continue
		}
		payload := data[i+8 : i+8+n]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[i+4:i+8]) {
			continue
		}
		var rec record
		if json.Unmarshal(payload, &rec) == nil && (rec.Op == "put" || rec.Op == "del") {
			return true
		}
	}
	return false
}
