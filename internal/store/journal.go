package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"dmc/internal/fault"
)

// The CATALOG journal is the store's commit log: one CRC-framed JSON
// record per catalog mutation, appended and fsynced before the caller
// sees success. Replay at boot folds the records in order; the last
// record for a name wins. The frame CRC (Castagnoli, like the spill
// block codec) makes a torn tail — the signature of a crash mid-append
// — detectable instead of silently corrupting every later record:
// replay stops at the first bad frame, trusts everything before it,
// and the store rewrites the journal from the live set.
//
// Layout:
//
//	8-byte magic "DMCCAT01"
//	repeat: uint32 LE payload length | uint32 LE crc32c(payload) | payload

var journalMagic = []byte("DMCCAT01")

// maxRecordBytes bounds one journal record; a length field beyond it is
// corruption (or an incompatible format), not a huge record.
const maxRecordBytes = 1 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is one catalog mutation. Op "put" upserts a dataset; "del"
// removes it. Blob paths are relative to the store root so the data
// directory can be moved wholesale.
type record struct {
	Op      string `json:"op"`
	Name    string `json:"name"`
	Blob    string `json:"blob,omitempty"`
	Rows    int    `json:"rows,omitempty"`
	Cols    int    `json:"cols,omitempty"`
	Ones    int    `json:"ones,omitempty"`
	Labeled bool   `json:"labeled,omitempty"`
	Size    int64  `json:"size,omitempty"`
}

// frameRecord encodes rec as one CRC-framed journal frame.
func frameRecord(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	return frame, nil
}

// writeJournalHeader emits the magic at the start of a fresh journal.
func writeJournalHeader(w io.Writer) error {
	_, err := w.Write(journalMagic)
	return err
}

// replayJournal reads the journal at path and folds its records into
// the live catalog. torn reports a detected torn/corrupt tail (the
// records before it are trusted and returned); a missing file is an
// empty journal. total counts the records read, so the caller can
// decide whether compaction is due.
func replayJournal(fs fault.FS, path string) (live map[string]record, total int, torn bool, err error) {
	live = make(map[string]record)
	f, err := fs.Open(path)
	if err != nil {
		if isNotExist(err) {
			return live, 0, false, nil
		}
		return nil, 0, false, err
	}
	defer f.Close()
	data, err := io.ReadAll(fault.NewRetryReader(nil, f, fault.RetryPolicy{}))
	if err != nil {
		return nil, 0, false, fmt.Errorf("store: reading journal: %w", err)
	}
	if len(data) == 0 {
		return live, 0, false, nil
	}
	if len(data) < len(journalMagic) || !bytes.Equal(data[:len(journalMagic)], journalMagic) {
		// A torn header from a crash during journal creation: nothing
		// trustworthy follows.
		return live, 0, true, nil
	}
	off := len(journalMagic)
	for off < len(data) {
		if len(data)-off < 8 {
			return live, total, true, nil // torn frame header
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes || len(data)-off-8 < n {
			return live, total, true, nil // torn or garbage length
		}
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return live, total, true, nil // torn payload
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return live, total, true, nil // framed garbage: same treatment
		}
		total++
		switch rec.Op {
		case "put":
			live[rec.Name] = rec
		case "del":
			delete(live, rec.Name)
		}
		off += 8 + n
	}
	return live, total, false, nil
}
