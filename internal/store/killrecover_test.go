package store

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"dmc/internal/core"
	"dmc/internal/fault"
	"dmc/internal/matrix"
	"dmc/internal/rules"
)

const (
	killModeEnv = "DMCSTORE_KILL_MODE"
	killDirEnv  = "DMCSTORE_KILL_DIR"
)

// killFS is a fault.FS that SIGKILLs the whole process on the Nth
// write to a path containing match — the deterministic stand-in for
// "the machine died at exactly this point of the commit protocol".
type killFS struct {
	match  string
	killAt int64
	writes atomic.Int64
}

func (k *killFS) Create(name string) (fault.File, error) { return k.wrap(fault.OS.Create(name)) }
func (k *killFS) Open(name string) (fault.File, error)   { return fault.OS.Open(name) }
func (k *killFS) Append(name string) (fault.File, error) { return k.wrap(fault.OS.Append(name)) }
func (k *killFS) Rename(o, n string) error               { return fault.OS.Rename(o, n) }

func (k *killFS) wrap(f fault.File, err error) (fault.File, error) {
	if err != nil {
		return nil, err
	}
	return &killFile{File: f, fs: k}, nil
}

type killFile struct {
	fault.File
	fs *killFS
}

func (kf *killFile) Write(p []byte) (int, error) {
	if strings.Contains(kf.File.Name(), kf.fs.match) {
		if n := kf.fs.writes.Add(1); n == kf.fs.killAt {
			// Let half the buffer land first — the torn-write shape a
			// real crash produces — then die without cleanup.
			kf.File.Write(p[:len(p)/2])
			kf.File.Sync()
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	}
	return kf.File.Write(p)
}

// killVictimMatrix is the dataset the victim process tries to commit.
func killVictimMatrix(t *testing.T) *matrix.Matrix {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "anchor c%02d c%02d\n", i%7, 7+i%5)
	}
	return mustBaskets(t, sb.String())
}

// TestHelperStoreKill is not a test: TestStoreKillRecover re-execs the
// binary to run it as the victim. Each mode dies by SIGKILL at a
// different point of the store's commit protocol.
func TestHelperStoreKill(t *testing.T) {
	mode := os.Getenv(killModeEnv)
	if mode == "" {
		t.Skip("helper process for TestStoreKillRecover")
	}
	dir := os.Getenv(killDirEnv)
	var fs fault.FS
	var compactEvery int
	switch mode {
	case "mid-blob":
		// Die halfway through writing the dataset bytes: the blob tmp
		// is torn, no journal record exists.
		fs = &killFS{match: "blobs", killAt: 1}
	case "mid-journal":
		// Blob committed, then die halfway through the journal append:
		// the CATALOG gains a torn tail.
		fs = &killFS{match: "CATALOG", killAt: 1}
	case "mid-compact":
		// Die halfway through the compaction snapshot (CATALOG.tmp).
		fs = &killFS{match: "CATALOG.tmp", killAt: 1}
		compactEvery = 2
	default:
		t.Fatalf("unknown kill mode %q", mode)
	}
	s, err := Open(dir, Options{FS: fs, CompactEvery: compactEvery})
	if err != nil {
		t.Fatalf("victim open: %v", err)
	}
	if mode == "mid-compact" {
		// Re-commit the same content until the record churn trips
		// compaction; the kill lands inside the snapshot write.
		for i := 0; i < 10; i++ {
			if _, err := s.Put("stable", killStableMatrix(t)); err != nil {
				t.Fatalf("victim churn put: %v", err)
			}
		}
		t.Fatal("compaction never triggered the kill")
	}
	s.Put("victim", killVictimMatrix(t))
	t.Fatal("victim survived the self-SIGKILL")
}

// killStableMatrix is the pre-committed dataset whose catalog entry and
// mine output must survive every kill byte-for-byte.
func killStableMatrix(t *testing.T) *matrix.Matrix {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < 80; i++ {
		fmt.Fprintf(&sb, "bread butter c%02d\n", i%9)
	}
	return mustBaskets(t, sb.String())
}

// mineBytes mines implications over m and renders them in the rule
// file format — the byte-identity probe for recovered datasets.
func mineBytes(t *testing.T, m *matrix.Matrix) []byte {
	t.Helper()
	rs, _ := core.DMCImp(m, core.FromPercent(75), core.Options{})
	var buf bytes.Buffer
	if err := rules.WriteImplications(&buf, rs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("stable dataset mined zero bytes; the identity check is vacuous")
	}
	return buf.Bytes()
}

// TestStoreKillRecover is the ISSUE acceptance scenario: SIGKILL the
// store mid-upload (blob write and journal append) and mid-compaction;
// on reopen of the same data directory the catalog lists exactly the
// committed datasets, a mine over a recovered dataset is byte-identical
// to its pre-kill output, and no *.tmp debris survives recovery.
func TestStoreKillRecover(t *testing.T) {
	for _, mode := range []string{"mid-blob", "mid-journal", "mid-compact"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			s := openStore(t, dir, Options{})
			stable := killStableMatrix(t)
			if _, err := s.Put("stable", stable); err != nil {
				t.Fatal(err)
			}
			preKill := mineBytes(t, stable)
			s.Close()

			cmd := exec.Command(os.Args[0], "-test.run", "TestHelperStoreKill$")
			cmd.Env = append(os.Environ(), killModeEnv+"="+mode, killDirEnv+"="+dir)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("victim exited cleanly:\n%s", out)
			}
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ProcessState.ExitCode() != -1 {
				t.Fatalf("victim was not killed by a signal: %v\n%s", err, out)
			}

			r := openStore(t, dir, Options{})
			if r.Len() != 1 {
				t.Fatalf("recovered catalog has %d datasets, want exactly {stable}: %+v", r.Len(), r.List())
			}
			got, err := r.Load("stable")
			if err != nil {
				t.Fatalf("loading recovered dataset: %v", err)
			}
			if postKill := mineBytes(t, got); !bytes.Equal(preKill, postKill) {
				t.Fatalf("mine over recovered dataset differs from pre-kill output:\n-- pre --\n%s\n-- post --\n%s", preKill, postKill)
			}
			assertNoTmpDebris(t, dir)
			// The kill must not have stranded an unreferenced blob
			// either: GC at open leaves only stable's blob + labels.
			des, err := os.ReadDir(filepath.Join(dir, blobDirName))
			if err != nil {
				t.Fatal(err)
			}
			if len(des) > 2 {
				t.Fatalf("%d files in blobs/ after recovery, want <= 2", len(des))
			}
		})
	}
}
