// Package store is the durable dataset store behind dmcserve: every
// uploaded dataset survives a crash, a SIGKILL or a redeploy, and a
// restart with the same data directory recovers the exact catalog.
//
// The design is the same ordering-based crash-safety protocol as the
// stream checkpoint layer (no write-ahead of intent, just commit
// points):
//
//   - dataset bytes land as immutable, content-addressed blob files
//     under blobs/ — written to "<name>.tmp", fsynced, then atomically
//     renamed; two names with identical content share one blob;
//   - the catalog itself is an append-only CRC-framed journal
//     (CATALOG): a dataset exists exactly when its "put" record is
//     durably in the journal, so the journal append is the single
//     commit point of an upload;
//   - replay at boot folds the journal; a torn tail (crash mid-append)
//     is detected by the frame CRC, trusted up to the tear, and
//     repaired by rewriting the journal from the live set — while
//     damage a tear cannot produce (bad magic, mid-file corruption
//     with valid frames after it) fails Open with ErrCorrupt so
//     committed records are never repaired away;
//   - renames and the journal's creation are followed by an fsync of
//     the containing directory, so every commit point survives power
//     loss, not just process death;
//   - past a churn threshold the journal is compacted to a snapshot of
//     the live records via the same tmp+fsync+rename dance, and blobs
//     no live record references are garbage-collected;
//   - boot also sweeps *.tmp debris and the scratch directory (spill
//     and degrade workspace for the mining engines), so a kill at any
//     point leaves nothing half-written behind.
//
// All file operations route through a fault.FS seam, so the fault
// matrix can tear journal writes, run out of disk mid-commit, or kill
// fsync, and assert the catalog never lies.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"dmc/internal/fault"
	"dmc/internal/matrix"
	"dmc/internal/obs"
)

// Store-level series on the process registry, mirroring the style of
// the fault and stream packages.
var (
	metricPuts = obs.Default.Counter("dmc_store_puts_total",
		"Datasets durably committed to the store.")
	metricDeletes = obs.Default.Counter("dmc_store_deletes_total",
		"Datasets deleted from the store.")
	metricCompactions = obs.Default.Counter("dmc_store_compactions_total",
		"Journal compactions (snapshot rewrites of CATALOG).")
	metricReplays = obs.Default.Counter("dmc_store_replays_total",
		"Journal replays at store open.")
	metricTornTails = obs.Default.Counter("dmc_store_torn_tails_total",
		"Torn or corrupt journal tails detected and repaired at replay.")
	metricDatasets = obs.Default.Gauge("dmc_store_datasets",
		"Datasets currently live in the store catalog.")
	metricJournalRecords = obs.Default.Gauge("dmc_store_journal_records",
		"Records in the CATALOG journal (compaction resets to the live count).")
)

const (
	catalogName = "CATALOG"
	blobDirName = "blobs"
	scratchName = "scratch"
)

// ErrCorrupt marks a journal the store refuses to touch: Open returns
// it when replay finds damage a crash tear cannot explain (bad magic,
// mid-file corruption with committed records after it) — repair would
// destroy committed data, so the operator must intervene. It also
// poisons a store whose journal could not be repaired after a failed
// append: further mutations are refused until the store is reopened.
var ErrCorrupt = errors.New("store: journal corrupt; reopen the store")

// ErrNotFound is returned by Get/Load/Delete for an unknown dataset.
var ErrNotFound = errors.New("store: no such dataset")

// Options tunes a Store. The zero value is production-safe.
type Options struct {
	// FS routes every durable file operation; nil means the real
	// filesystem. Tests install a fault.Injector here.
	FS fault.FS
	// CompactEvery triggers a journal compaction once the journal holds
	// this many records beyond the live set (replaced uploads, deletes).
	// ≤ 0 means 64.
	CompactEvery int
}

func (o Options) fs() fault.FS {
	if o.FS != nil {
		return o.FS
	}
	return fault.OS
}

func (o Options) compactEvery() int {
	if o.CompactEvery > 0 {
		return o.CompactEvery
	}
	return 64
}

// Entry is one live dataset in the catalog.
type Entry struct {
	Name    string
	Path    string // absolute blob path, loadable via matrix.Load
	Hash    string // content address ("sha256-<hex>"), the blob's identity
	Rows    int
	Cols    int
	Ones    int
	Labeled bool
	Size    int64 // blob size in bytes (streaming-threshold routing)
}

// Store is a durable dataset catalog over one data directory. Safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	entries  map[string]record
	journal  fault.File // open append handle; nil after Close
	total    int        // records in the journal
	poisoned bool       // a failed append could not be repaired
}

// Open opens (creating if needed) the store at dir: sweeps crash
// debris, replays the CATALOG journal, repairs a torn tail, compacts
// past the churn threshold, and garbage-collects unreferenced blobs.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{dir: dir, opts: opts}
	for _, d := range []string{dir, s.blobDir(), s.ScratchDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	// Scratch is wholly store-owned workspace (spill directories,
	// degrade temp files): anything in it after a restart is debris
	// from a killed mine.
	if err := sweepDir(s.ScratchDir()); err != nil {
		return nil, err
	}
	sweepTmp(dir)
	sweepTmp(s.blobDir())

	live, total, torn, err := replayJournal(opts.fs(), s.catalogPath())
	if err != nil {
		return nil, err
	}
	metricReplays.Inc()
	s.entries, s.total = live, total
	if torn {
		metricTornTails.Inc()
	}
	if torn || total-len(live) >= opts.compactEvery() {
		if err := s.compactLocked(); err != nil {
			return nil, err
		}
	} else if err := s.openJournalLocked(); err != nil {
		return nil, err
	}
	if err := s.gcBlobsLocked(); err != nil {
		return nil, err
	}
	s.gauges()
	return s, nil
}

func (s *Store) catalogPath() string { return filepath.Join(s.dir, catalogName) }
func (s *Store) blobDir() string     { return filepath.Join(s.dir, blobDirName) }

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// ScratchDir is store-owned scratch space for the mining engines'
// spill directories and degrade temp files. It is swept at every Open,
// so spill debris from a SIGKILLed mine never outlives the restart.
func (s *Store) ScratchDir() string { return filepath.Join(s.dir, scratchName) }

// Close releases the journal handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// Len returns the number of live datasets.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// List returns the live catalog sorted by name.
func (s *Store) List() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for _, rec := range s.entries {
		out = append(out, s.entryLocked(rec))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the live entry for name.
func (s *Store) Get(name string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.entries[name]
	if !ok {
		return Entry{}, false
	}
	return s.entryLocked(rec), true
}

func (s *Store) entryLocked(rec record) Entry {
	// The content address is the blob's base name minus its extension —
	// derived, not journaled, so old journals stay readable.
	base := filepath.Base(filepath.FromSlash(rec.Blob))
	hash := base[:len(base)-len(filepath.Ext(base))]
	return Entry{
		Name: rec.Name, Path: filepath.Join(s.dir, filepath.FromSlash(rec.Blob)),
		Hash: hash,
		Rows: rec.Rows, Cols: rec.Cols, Ones: rec.Ones, Labeled: rec.Labeled, Size: rec.Size,
	}
}

// Load reads the named dataset's matrix back from its blob.
func (s *Store) Load(name string) (*matrix.Matrix, error) {
	e, ok := s.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return matrix.Load(e.Path)
}

// Put durably stores m under name, replacing any previous dataset of
// that name. On return the dataset survives SIGKILL: the blob (and its
// labels companion, when labeled) is committed via tmp+fsync+rename
// before the journal record — the single commit point — is appended
// and fsynced. On error the catalog is unchanged.
func (s *Store) Put(name string, m *matrix.Matrix) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poisoned {
		return Entry{}, ErrCorrupt
	}
	rec, err := s.writeBlobLocked(name, m)
	if err != nil {
		return Entry{}, fmt.Errorf("store: put %q: %w", name, err)
	}
	if err := s.appendLocked(rec); err != nil {
		return Entry{}, fmt.Errorf("store: put %q: %w", name, err)
	}
	s.entries[name] = rec
	metricPuts.Inc()
	if s.total-len(s.entries) >= s.opts.compactEvery() {
		// Compaction is an optimization: its failure must not fail the
		// already-committed Put. A sick disk will resurface on the next
		// mutation anyway.
		if err := s.compactLocked(); err == nil {
			_ = s.gcBlobsLocked()
		}
	}
	s.gauges()
	return s.entryLocked(rec), nil
}

// Delete removes name from the catalog. The blob stays until the next
// compaction garbage-collects it (another name may share it).
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poisoned {
		return ErrCorrupt
	}
	if _, ok := s.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err := s.appendLocked(record{Op: "del", Name: name}); err != nil {
		return fmt.Errorf("store: delete %q: %w", name, err)
	}
	delete(s.entries, name)
	metricDeletes.Inc()
	s.gauges()
	return nil
}

// writeBlobLocked commits m's bytes as a content-addressed blob,
// returning the journal record that would make it live. Blobs are
// immutable: if the hash already exists on disk the write is skipped
// (dedupe). The labels companion is committed before the data file so
// a committed journal record never names a blob matrix.Load cannot
// fully reconstruct.
func (s *Store) writeBlobLocked(name string, m *matrix.Matrix) (record, error) {
	data, err := matrix.EncodeBinary(m)
	if err != nil {
		return record{}, err
	}
	var labels []byte
	if m.Labels() != nil {
		labels, err = matrix.EncodeLabels(m.Labels())
		if err != nil {
			return record{}, err
		}
	}
	blobRel := blobDirName + "/" + hashBytes(data, labels) + matrix.ExtBinary
	blobAbs := filepath.Join(s.dir, filepath.FromSlash(blobRel))
	if _, err := os.Stat(blobAbs); err != nil {
		if labels != nil {
			if err := s.commitFile(blobAbs+".labels", labels); err != nil {
				return record{}, err
			}
		}
		if err := s.commitFile(blobAbs, data); err != nil {
			return record{}, err
		}
	}
	return record{
		Op: "put", Name: name, Blob: blobRel,
		Rows: m.NumRows(), Cols: m.NumCols(), Ones: m.NumOnes(),
		Labeled: m.Labels() != nil, Size: int64(len(data)),
	}, nil
}

// ContentHash returns m's content address — the same "sha256-<hex>"
// identity the store names blobs by and reports in Entry.Hash, so
// layers above (the mine-result cache) can derive keys for matrices
// that never touched a store. Two matrices hash equal exactly when
// their encoded bytes and labels are identical.
func ContentHash(m *matrix.Matrix) (string, error) {
	data, err := matrix.EncodeBinary(m)
	if err != nil {
		return "", err
	}
	var labels []byte
	if m.Labels() != nil {
		if labels, err = matrix.EncodeLabels(m.Labels()); err != nil {
			return "", err
		}
	}
	return hashBytes(data, labels), nil
}

// hashBytes is the blob naming scheme: sha256 over the encoded matrix,
// then a zero byte and the encoded labels when present.
func hashBytes(data, labels []byte) string {
	h := sha256.New()
	h.Write(data)
	if labels != nil {
		h.Write([]byte{0})
		h.Write(labels)
	}
	return "sha256-" + hex.EncodeToString(h.Sum(nil))[:32]
}

// commitFile writes data to path via tmp+fsync+rename through the
// fault seam, removing the tmp on any failure.
func (s *Store) commitFile(path string, data []byte) error {
	return CommitBlob(s.opts.fs(), path, data)
}

// CommitBlob writes data to path with the store's full durability
// discipline — "<path>.tmp", fsync, atomic rename, then an fsync of the
// containing directory — removing the tmp on any failure. Exported so
// sibling durable layers (the job subsystem's result blobs) commit
// their files under the exact same crash-safety protocol instead of
// reinventing it. A nil fs means the real filesystem.
var blobTmpSeq atomic.Uint64

func CommitBlob(fs fault.FS, path string, data []byte) error {
	if fs == nil {
		fs = fault.OS
	}
	// The tmp name carries a per-process sequence so concurrent commits
	// of the same content address (two jobs producing identical results)
	// never clobber each other's staging file. Either rename wins; the
	// bytes are the same.
	tmp := fmt.Sprintf("%s.%d.tmp", path, blobTmpSeq.Add(1))
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename is only durable once the directory entry is: without
	// this fsync a power cut can durably journal a record whose blob
	// name was lost, and the catalog would lie at the next boot.
	return fault.SyncDir(fs, filepath.Dir(path))
}

// BlobHash returns the content address ("sha256-<hex>") of a raw
// payload, in the same naming scheme the store uses for dataset blobs —
// the identity the job subsystem journals for committed mine results.
func BlobHash(payload []byte) string { return hashBytes(payload, nil) }

// appendLocked durably appends one record to the journal. On failure
// the file may hold a torn frame, which would poison every later
// append — so the journal is immediately rewritten from the live set
// (which does not include rec); if even that fails the store is
// poisoned until reopened.
func (s *Store) appendLocked(rec record) error {
	if s.journal == nil {
		if err := s.openJournalLocked(); err != nil {
			return err
		}
	}
	frame, err := frameRecord(rec)
	if err != nil {
		return err
	}
	werr := func() error {
		if _, err := s.journal.Write(frame); err != nil {
			return err
		}
		return s.journal.Sync()
	}()
	if werr == nil {
		s.total++
		return nil
	}
	if cerr := s.compactLocked(); cerr != nil {
		s.poisoned = true
		return errors.Join(werr, cerr, ErrCorrupt)
	}
	return werr
}

// openJournalLocked opens the append handle, creating the journal with
// its magic header if it does not exist yet.
func (s *Store) openJournalLocked() error {
	fs := s.opts.fs()
	fi, statErr := os.Stat(s.catalogPath())
	fresh := statErr != nil || fi.Size() == 0
	f, err := fs.Append(s.catalogPath())
	if err != nil {
		return err
	}
	if fresh {
		if err := writeJournalHeader(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		// Make the journal's own directory entry durable before any
		// record is appended: a power cut must not be able to lose the
		// file that holds the commit log.
		if err := fault.SyncDir(fs, filepath.Dir(s.catalogPath())); err != nil {
			f.Close()
			return err
		}
	}
	if s.journal != nil {
		s.journal.Close()
	}
	s.journal = f
	return nil
}

// compactLocked snapshots the live set into a fresh journal and
// atomically replaces CATALOG with it, then reopens the append handle
// (the old handle points at the unlinked inode).
func (s *Store) compactLocked() error {
	fs := s.opts.fs()
	tmp := s.catalogPath() + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	werr := func() error {
		if err := writeJournalHeader(f); err != nil {
			return err
		}
		names := make([]string, 0, len(s.entries))
		for n := range s.entries {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			frame, err := frameRecord(s.entries[n])
			if err != nil {
				return err
			}
			if _, err := f.Write(frame); err != nil {
				return err
			}
		}
		return f.Sync()
	}()
	if werr != nil {
		f.Close()
		os.Remove(tmp)
		return werr
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, s.catalogPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	// Same discipline as commitFile: the snapshot replaces CATALOG only
	// once the rename itself is durable.
	if err := fault.SyncDir(fs, filepath.Dir(s.catalogPath())); err != nil {
		return err
	}
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	if err := s.openJournalLocked(); err != nil {
		return err
	}
	s.total = len(s.entries)
	metricCompactions.Inc()
	return nil
}

// gcBlobsLocked removes blob files (and labels companions) no live
// record references — superseded uploads and blobs orphaned by a crash
// between blob commit and journal append. Removal failures are
// ignored: an unreferenced blob is invisible and harmless.
func (s *Store) gcBlobsLocked() error {
	refs := make(map[string]bool, len(s.entries))
	for _, rec := range s.entries {
		refs[filepath.Base(filepath.FromSlash(rec.Blob))] = true
	}
	des, err := os.ReadDir(s.blobDir())
	if err != nil {
		return err
	}
	for _, de := range des {
		name := de.Name()
		base := name
		if filepath.Ext(base) == ".labels" {
			base = base[:len(base)-len(".labels")]
		}
		if !refs[base] {
			os.Remove(filepath.Join(s.blobDir(), name))
		}
	}
	return nil
}

func (s *Store) gauges() {
	metricDatasets.Set(int64(len(s.entries)))
	metricJournalRecords.Set(int64(s.total))
}

// sweepDir empties dir without removing it.
func sweepDir(dir string) error {
	des, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, de := range des {
		if err := os.RemoveAll(filepath.Join(dir, de.Name())); err != nil {
			return err
		}
	}
	return nil
}

// sweepTmp removes *.tmp debris (a crashed commit's half-written file)
// directly under dir.
func sweepTmp(dir string) {
	stale, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		return
	}
	for _, f := range stale {
		os.Remove(f)
	}
}

func isNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }
