package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmc/internal/matrix"
)

func mustBaskets(t *testing.T, text string) *matrix.Matrix {
	t.Helper()
	m, err := matrix.ReadBaskets(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// assertNoTmpDebris walks the whole data directory: a recovered store
// must never leave *.tmp files behind.
func assertNoTmpDebris(t *testing.T, dir string) {
	t.Helper()
	err := filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() && strings.HasSuffix(path, ".tmp") {
			t.Errorf("tmp debris survived recovery: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStorePutGetReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	m1 := mustBaskets(t, "bread butter\nbread butter jam\nbread\n")
	m2 := mustBaskets(t, "x y z\nx y\n")

	e1, err := s.Put("groceries", m1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Rows != 3 || !e1.Labeled || e1.Size <= 0 {
		t.Fatalf("entry = %+v", e1)
	}
	if _, err := s.Put("letters", m2); err != nil {
		t.Fatal(err)
	}
	// Replace groceries with different content.
	m3 := mustBaskets(t, "bread jam\nbread jam\n")
	if _, err := s.Put("groceries", m3); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A fresh open replays the journal and recovers the exact catalog.
	r := openStore(t, dir, Options{})
	if r.Len() != 2 {
		t.Fatalf("recovered %d datasets, want 2", r.Len())
	}
	got, err := r.Load("groceries")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 || got.Label(0) != m3.Label(0) {
		t.Fatalf("recovered groceries = %d rows, labels %v", got.NumRows(), got.Labels())
	}
	if lst := r.List(); len(lst) != 2 || lst[0].Name != "groceries" || lst[1].Name != "letters" {
		t.Fatalf("list = %+v", lst)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("phantom dataset")
	}
	assertNoTmpDebris(t, dir)
}

// Identical content under two names shares one content-addressed blob.
func TestStoreContentAddressedDedupe(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	m := mustBaskets(t, "a b\na c\n")
	ea, err := s.Put("first", m)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := s.Put("second", m)
	if err != nil {
		t.Fatal(err)
	}
	if ea.Path != eb.Path {
		t.Fatalf("identical content got two blobs: %s vs %s", ea.Path, eb.Path)
	}
	// Deleting one name must not break the other (blob GC is
	// reference-counted across the live set).
	if err := s.Delete("first"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := openStore(t, dir, Options{})
	if _, err := r.Load("second"); err != nil {
		t.Fatalf("shared blob lost after delete+reopen: %v", err)
	}
	if _, ok := r.Get("first"); ok {
		t.Fatal("deleted dataset resurrected")
	}
}

func TestStoreCompactionAndGC(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{CompactEvery: 4})
	// Churn one name with distinct contents: each Put supersedes the
	// last record and strands the previous blob.
	for i := 0; i < 10; i++ {
		m := mustBaskets(t, strings.Repeat("a b\n", i+1))
		if _, err := s.Put("churn", m); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	total, live := s.total, len(s.entries)
	s.mu.Unlock()
	if total-live >= 2*4 {
		t.Fatalf("journal never compacted: %d records for %d live", total, live)
	}
	s.Close()

	r := openStore(t, dir, Options{})
	if r.Len() != 1 {
		t.Fatalf("recovered %d datasets, want 1", r.Len())
	}
	m, err := r.Load("churn")
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 10 {
		t.Fatalf("recovered churn has %d rows, want the last Put's 10", m.NumRows())
	}
	// GC: only the live blob (and its labels companion) remain.
	des, err := os.ReadDir(filepath.Join(dir, blobDirName))
	if err != nil {
		t.Fatal(err)
	}
	if len(des) > 2 {
		t.Fatalf("%d files in blobs/ after GC, want <= 2 (blob + labels)", len(des))
	}
	assertNoTmpDebris(t, dir)
}

// A torn journal tail — the on-disk signature of SIGKILL mid-append —
// is detected at replay, trusted up to the tear, and repaired.
func TestStoreTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if _, err := s.Put("keep", mustBaskets(t, "a b\n")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the tail: a half-written frame of garbage.
	f, err := os.OpenFile(filepath.Join(dir, catalogName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openStore(t, dir, Options{})
	if r.Len() != 1 {
		t.Fatalf("recovered %d datasets, want 1", r.Len())
	}
	if _, err := r.Load("keep"); err != nil {
		t.Fatal(err)
	}
	// The repair rewrote the journal: a further Put and reopen must
	// see both datasets (the tear did not poison later appends).
	if _, err := r.Put("after", mustBaskets(t, "c d\n")); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := openStore(t, dir, Options{})
	if r2.Len() != 2 {
		t.Fatalf("after tear repair + put: %d datasets, want 2", r2.Len())
	}
}

// Mid-file corruption — a bad frame with valid frames after it, which a
// single crash tear cannot produce — must fail Open with ErrCorrupt.
// Truncate-and-repair here would silently discard committed records and
// then GC the blobs they reference; refusing keeps both intact for the
// operator (a restored journal byte recovers the full catalog).
func TestStoreMidJournalCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if _, err := s.Put("one", mustBaskets(t, "a b\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("two", mustBaskets(t, "c d\n")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	blobsBefore, err := os.ReadDir(filepath.Join(dir, blobDirName))
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the first record's payload: offset 20 is past
	// the 8-byte magic and the first frame's 8-byte header, and the
	// second record's frame is still valid after it.
	path := filepath.Join(dir, catalogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-journal corruption: err = %v, want ErrCorrupt", err)
	}
	// The refused Open must not have "repaired" anything: every blob is
	// still on disk and the journal bytes are untouched, so restoring
	// the flipped byte recovers the complete catalog.
	blobsAfter, err := os.ReadDir(filepath.Join(dir, blobDirName))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobsAfter) != len(blobsBefore) {
		t.Fatalf("corrupt-journal Open GCed blobs: %d -> %d files", len(blobsBefore), len(blobsAfter))
	}
	data[20] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openStore(t, dir, Options{})
	if r.Len() != 2 {
		t.Fatalf("restored journal recovered %d datasets, want 2", r.Len())
	}
}

// A journal whose magic is not ours (pointing -data-dir at a foreign or
// incompatible store) must refuse to open, not be "repaired" into an
// empty catalog that GCs whatever the directory held.
func TestStoreForeignJournalFailsOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, catalogName), []byte("NOTDMC00 something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over foreign journal: err = %v, want ErrCorrupt", err)
	}
}

// A strict prefix of the magic is the one header state a crash during
// journal creation can leave: nothing was committed yet, so repair (a
// fresh empty journal) is correct.
func TestStoreTornHeaderRepairs(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, catalogName), journalMagic[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir, Options{})
	if s.Len() != 0 {
		t.Fatalf("torn-header store recovered %d datasets, want 0", s.Len())
	}
	if _, err := s.Put("fresh", mustBaskets(t, "a b\n")); err != nil {
		t.Fatalf("Put after torn-header repair: %v", err)
	}
}

// Some filesystems surface a crash as a tail of zero blocks. An
// all-zeros frame header passes the CRC check (crc32c of an empty
// payload is 0), so it needs explicit handling: still a repairable
// tear, never ErrCorrupt.
func TestStoreZeroFilledTailRepairs(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if _, err := s.Put("keep", mustBaskets(t, "a b\n")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(filepath.Join(dir, catalogName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r := openStore(t, dir, Options{})
	if r.Len() != 1 {
		t.Fatalf("zero-filled tail recovered %d datasets, want 1", r.Len())
	}
	if _, err := r.Load("keep"); err != nil {
		t.Fatal(err)
	}
}

// Scratch is swept at every open: spill debris from a killed mine must
// not accumulate across restarts.
func TestStoreScratchSweep(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	debris := filepath.Join(s.ScratchDir(), "dmc-stream-12345")
	if err := os.MkdirAll(debris, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(debris, "bucket-00.rows"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := openStore(t, dir, Options{})
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatalf("scratch debris survived reopen: %v", err)
	}
	if _, err := os.Stat(r.ScratchDir()); err != nil {
		t.Fatalf("scratch dir itself must exist: %v", err)
	}
}

func TestStoreDeleteUnknown(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	if err := s.Delete("ghost"); err == nil {
		t.Fatal("deleting an unknown dataset must error")
	}
}
