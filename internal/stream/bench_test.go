package stream

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dmc/internal/core"
	"dmc/internal/matrix"
)

// Streaming benchmarks: the replay fast path (legacy unframed codec vs
// the framed block codec, across prefetch depths), the partitioning
// pass (serial vs sharded), and the end-to-end disk miners. Rows/sec
// comes from b.ReportMetric, MB/sec from b.SetBytes over the spilled
// byte volume — the figures EXPERIMENTS.md's streaming section quotes.

func benchInput(b *testing.B, rows int) (string, *matrix.Matrix) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	m := randomMatrix(rng, rows, 64)
	path := filepath.Join(b.TempDir(), "bench"+matrix.ExtBinary)
	if err := matrix.Save(path, m); err != nil {
		b.Fatal(err)
	}
	return path, m
}

// BenchmarkReplayPass measures one full pass over the spilled buckets —
// the unit the miners repeat per phase — for the legacy row-at-a-time
// codec and the framed block codec at prefetch depths 1 and 2.
func BenchmarkReplayPass(b *testing.B) {
	path, m := benchInput(b, 4000)
	for _, c := range []struct {
		name string
		cfg  Config
	}{
		{"legacy", Config{LegacyCodec: true, Prefetch: 1}},
		{"framed-prefetch1", Config{Prefetch: 1}},
		{"framed-prefetch2", Config{Prefetch: 2}},
	} {
		b.Run(c.name, func(b *testing.B) {
			c.cfg.TmpDir = b.TempDir()
			p, err := PartitionWith(path, c.cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			var spilled int64
			for _, bk := range p.buckets {
				fi, err := os.Stat(bk.path)
				if err != nil {
					b.Fatal(err)
				}
				spilled += fi.Size()
			}
			b.SetBytes(spilled)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows := p.Pass()
				n := rows.Len()
				for j := 0; j < n; j++ {
					rows.Row(j)
				}
			}
			b.ReportMetric(float64(m.NumRows()*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkPartition measures the spill-building pass from a binary
// matrix file, serial vs sharded decode+classify.
func BenchmarkPartition(b *testing.B) {
	path, m := benchInput(b, 4000)
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			b.SetBytes(fi.Size())
			for i := 0; i < b.N; i++ {
				p, err := PartitionWith(path, Config{TmpDir: b.TempDir(), PartitionWorkers: w})
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.NumRows()*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkStreamMine is the end-to-end disk miner: serial legacy path
// (the pre-block-codec configuration) against the framed parallel one.
func BenchmarkStreamMine(b *testing.B) {
	path, m := benchInput(b, 2000)
	th := core.FromPercent(85)
	for _, c := range []struct {
		name string
		cfg  Config
	}{
		{"serial-legacy", Config{Workers: 1, LegacyCodec: true, Prefetch: 1}},
		{"parallel-framed-w1", Config{Workers: 1}},
		{"parallel-framed-w2", Config{Workers: 2}},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := MineImplicationsCfg(path, th, core.Options{}, c.cfg); err != nil {
					b.Fatal(err)
				}
			}
			// One partitioning pass plus two replay passes per mine.
			b.ReportMetric(float64(3*m.NumRows()*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
