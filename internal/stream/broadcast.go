package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dmc/internal/core"
	"dmc/internal/fault"
	"dmc/internal/matrix"
)

// This file is the replay engine: one background reader goroutine per
// pass opens the spill segments in density order, decodes them a frame
// at a time, and broadcasts the decoded blocks to every consumer view
// through a bounded ring channel. With one view that is the
// double-buffered prefetch path (the reader decodes frame k+1 while the
// miner consumes frame k); with n views it is the single-reader
// broadcast that lets n §7 shard workers share one disk read per pass.
//
// Lifecycle rules that keep this deadlock- and leak-free:
//   - the reader is the only sender and the only goroutine touching the
//     spill files; it closes every view channel exactly once on exit
//     (after storing its error), so consumers never block forever;
//   - every send selects on the view's done channel and the reader's
//     stop channel, so an abandoned view (a worker that switched to a
//     shared DMC-bitmap tail mid-pass) or Partitioned.Close never
//     wedges the reader;
//   - blocks are refcounted across views and recycled through a pool;
//     a block is never pooled while a consumer may still hold one of
//     its row slices (the final row of a pass stays un-pooled).

var errPassClosed = errors.New("partition closed mid-pass")

// Pass starts a fresh prefetching pass over all rows, sparsest bucket
// first. An I/O error mid-pass panics with a *PassError (the core
// engines have no error channel), which the Mine entry points recover
// into an ordinary error.
func (p *Partitioned) Pass() core.Rows { return p.ConcurrentPass(1)[0] }

// ConcurrentPass implements core.ConcurrentSource: one disk read of
// the pass, broadcast to n independently-consumable views. Each view
// obeys the sequential core.Rows contract on its own goroutine.
func (p *Partitioned) ConcurrentPass(n int) []core.Rows {
	if n < 1 {
		n = 1
	}
	metricPasses.Inc()
	r := &passReader{p: p, stop: make(chan struct{}), done: make(chan struct{})}
	r.pool.New = func() any { return new(matrix.RowBlock) }
	rows := make([]core.Rows, n)
	r.views = make([]*view, n)
	for i := range rows {
		v := &view{r: r, total: p.rows, ch: make(chan *sharedBlock, p.cfg.prefetch()), done: make(chan struct{})}
		r.views[i] = v
		rows[i] = v
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		r.err = errPassClosed
		for _, v := range r.views {
			close(v.ch)
		}
		close(r.done)
		return rows
	}
	p.readers[r] = struct{}{}
	p.mu.Unlock()
	go r.run()
	if ctx := p.cfg.Ctx; ctx != nil {
		// Context watcher: a cancelled mine cancels the pass with the
		// context's own error, so consumers see context.Canceled (not a
		// generic closed-pass error) and the reader tears down promptly.
		go func() {
			select {
			case <-ctx.Done():
				r.cancelWith(ctx.Err())
			case <-r.done:
			}
		}()
	}
	return rows
}

// sharedBlock is one decoded frame with a reference per view it was
// (or will be) delivered to; the last release returns it to the pool.
type sharedBlock struct {
	blk  *matrix.RowBlock
	refs atomic.Int32
}

func (sb *sharedBlock) release(pool *sync.Pool) {
	if sb.refs.Add(-1) == 0 {
		pool.Put(sb.blk)
	}
}

// passReader owns one pass: the spill file handles, the decode loop,
// and the fan-out.
type passReader struct {
	p        *Partitioned
	views    []*view
	pool     sync.Pool // *matrix.RowBlock
	stop     chan struct{}
	stopOnce sync.Once
	cause    error         // why the pass was cancelled; set before stop closes
	done     chan struct{} // closed when the goroutine has exited
	err      error         // set before the view channels close
}

func (r *passReader) cancel() { r.cancelWith(errPassClosed) }

// cancelWith stops the pass, recording why. The first caller wins; the
// cause is published before stop closes, so any goroutine that observed
// <-r.stop reads it race-free via causeErr.
func (r *passReader) cancelWith(err error) {
	r.stopOnce.Do(func() {
		r.cause = err
		close(r.stop)
	})
}

func (r *passReader) causeErr() error {
	if r.cause != nil {
		return r.cause
	}
	return errPassClosed
}

func (r *passReader) run() {
	delivered, err := r.readBuckets()
	if err == nil && delivered != r.p.rows {
		err = fmt.Errorf("pass delivered %d of %d rows", delivered, r.p.rows)
	}
	r.err = err
	for _, v := range r.views {
		close(v.ch)
	}
	// Recover queued blocks of views that were released before
	// consuming them, so the depth gauge converges back.
	for _, v := range r.views {
		select {
		case <-v.done:
			for sb := range v.ch {
				metricBroadcastDepth.Dec()
				sb.release(&r.pool)
			}
		default:
		}
	}
	r.p.mu.Lock()
	delete(r.p.readers, r)
	r.p.mu.Unlock()
	close(r.done)
}

func (r *passReader) readBuckets() (int, error) {
	delivered := 0
	for _, b := range r.p.buckets {
		select {
		case <-r.stop:
			return delivered, r.causeErr()
		default:
		}
		n, err := r.readBucket(b)
		delivered += n
		if err != nil {
			return delivered, err
		}
	}
	return delivered, nil
}

// readBucket streams one spill segment to the views, surviving two
// failure classes: transient byte-level I/O (retried inside
// fault.RetryReader, byte-identical re-issue via ReadAt) and detected
// frame corruption (CRC mismatch in the framed codec). The latter gets
// a bounded whole-segment re-read that decodes-and-discards the frames
// already delivered — consumers never see a duplicate, reordered, or
// corrupt row; if the corruption persists the typed error names the
// bucket, segment, and frame. Legacy segments carry no CRC, so only
// the byte-level retry applies there.
func (r *passReader) readBucket(b bucket) (int, error) {
	attempts := r.p.cfg.Retry.Attempts()
	delivered := 0
	var skip int64 // frames verified and delivered by earlier attempts
	for attempt := 1; ; attempt++ {
		n, frames, err := r.readSegment(b, skip)
		delivered += n
		skip += frames
		if err == nil {
			if attempt > 1 {
				fault.RecordRetry("recovered")
			}
			return delivered, nil
		}
		if b.legacy || !errors.Is(err, matrix.ErrFrameCRC) || attempt >= attempts {
			if errors.Is(err, matrix.ErrFrameCRC) {
				fault.RecordRetry("exhausted")
			}
			return delivered, err
		}
		fault.RecordRetry("retried")
		if serr := r.p.cfg.Retry.Sleep(r.p.cfg.Ctx, attempt); serr != nil {
			return delivered, serr
		}
	}
}

// readSegment is one attempt over a segment: open, skip the first
// `skip` frames (re-verifying their CRCs as it decodes past them),
// then deliver the rest. Returns the rows and frames delivered by this
// attempt. I/O and decode errors come back located as *PassError;
// cancellation comes back as the bare cancel cause.
func (r *passReader) readSegment(b bucket, skip int64) (int, int64, error) {
	f, err := r.p.cfg.fs().Open(b.path)
	if err != nil {
		return 0, 0, r.locate(b, -1, err)
	}
	r.p.openFDs.Add(1)
	defer func() {
		f.Close()
		r.p.openFDs.Add(-1)
	}()
	br := bufio.NewReaderSize(fault.NewRetryReader(r.p.cfg.Ctx, f, r.p.cfg.Retry), r.p.cfg.readBufBytes())
	var brd *matrix.BlockReader
	if !b.legacy {
		if brd, err = matrix.NewBlockReader(br, r.p.cols); err != nil {
			return 0, 0, r.locate(b, -1, err)
		}
	}
	if skip > 0 {
		scratch := r.pool.Get().(*matrix.RowBlock)
		for i := int64(0); i < skip; i++ {
			if err := brd.ReadRowBlock(scratch); err != nil {
				r.pool.Put(scratch)
				return 0, 0, r.locate(b, brd.Frames(), err)
			}
		}
		r.pool.Put(scratch)
	}
	delivered := 0
	var frames int64
	for {
		blk := r.pool.Get().(*matrix.RowBlock)
		var frameIdx int64
		if brd != nil {
			frameIdx = brd.Frames()
			err = brd.ReadRowBlock(blk)
		} else {
			frameIdx = frames
			err = matrix.ReadRowBlockLegacy(br, r.p.cols, r.p.cfg.blockRowsVal(), blk)
		}
		if err == io.EOF {
			r.pool.Put(blk)
			return delivered, frames, nil
		}
		if err != nil {
			r.pool.Put(blk)
			return delivered, frames, r.locate(b, frameIdx, err)
		}
		metricFrames.Inc()
		delivered += blk.Len()
		frames++
		if !r.deliver(blk) {
			return delivered, frames, r.causeErr()
		}
	}
}

// locate wraps err as a *PassError naming the bucket, segment, and
// frame where a pass died (frame -1 when the failure precedes any
// frame). Errors already located keep their original position.
func (r *passReader) locate(b bucket, frame int64, err error) error {
	var pe *PassError
	if errors.As(err, &pe) {
		return err
	}
	return &PassError{Bucket: b.bkt, Segment: filepath.Base(b.path), Frame: frame, Err: err}
}

// deliver broadcasts one block to every still-attached view. Returns
// false when the pass was cancelled under it.
func (r *passReader) deliver(blk *matrix.RowBlock) bool {
	sb := &sharedBlock{blk: blk}
	sb.refs.Store(int32(len(r.views)))
	for _, v := range r.views {
		select {
		case <-v.done:
			sb.release(&r.pool)
			continue
		default:
		}
		select {
		case v.ch <- sb:
			metricBroadcastDepth.Inc()
		case <-v.done:
			sb.release(&r.pool)
		case <-r.stop:
			sb.release(&r.pool)
			return false
		}
	}
	return true
}

// view is one consumer's cursor over a broadcast pass. It implements
// core.Rows (sequential Row(i)) and core.ReleasableRows.
type view struct {
	r     *passReader
	total int
	ch    chan *sharedBlock
	done  chan struct{}
	once  sync.Once
	cur   *sharedBlock
	idx   int // next row within cur
	next  int // next absolute row index
}

func (v *view) Len() int { return v.total }

func (v *view) Row(i int) []matrix.Col {
	if i != v.next {
		panic(newPassError(fmt.Errorf("out-of-order read: got %d, want %d", i, v.next)))
	}
	v.next++
	for v.cur == nil || v.idx == v.cur.blk.Len() {
		if v.cur != nil {
			v.cur.release(&v.r.pool)
			v.cur = nil
		}
		var sb *sharedBlock
		var ok bool
		select {
		case sb, ok = <-v.ch:
		default:
			metricPrefetchStalls.Inc() // miner outran the prefetch reader
			sb, ok = <-v.ch
		}
		if !ok {
			err := v.r.err
			if err == nil {
				err = fmt.Errorf("pass ended at row %d of %d", v.next-1, v.total)
			}
			panic(asPassError(err))
		}
		metricBroadcastDepth.Dec()
		v.cur = sb
		v.idx = 0
	}
	row := v.cur.blk.Row(v.idx)
	v.idx++
	if v.next == v.total {
		// Final row: detach from the reader so it can finish, but keep
		// cur un-pooled — the caller may still hold this row's slice.
		v.Release()
	}
	return row
}

// Release detaches the view from the broadcast: the reader skips it
// from now on, and anything already queued is drained back to the pool
// (by the reader at exit, or here once the channel is closed). The
// current block is intentionally not pooled: the consumer's last row
// may still alias it. Idempotent; safe after the pass completed.
func (v *view) Release() {
	v.once.Do(func() {
		close(v.done)
		for {
			select {
			case sb, ok := <-v.ch:
				if !ok {
					return
				}
				metricBroadcastDepth.Dec()
				sb.release(&v.r.pool)
			default:
				return
			}
		}
	})
}
