package stream

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dmc/internal/obs"
)

// Checkpointing makes the spill a durable artifact instead of a
// throwaway temp directory, which is what turns a SIGKILL mid-mine into
// a fast restart: the expensive first pass (decode + bucket + spill) is
// persisted, and every mining pass is a deterministic replay of the
// spill, so `-resume` reproduces the exact rule set of an uninterrupted
// run.
//
// The crash-safety protocol is write-ahead-free and purely ordering
// based:
//  1. every segment is written to "<name>.tmp", fsynced, then renamed
//     into place (rename is atomic on POSIX);
//  2. MANIFEST.json — the only thing resume trusts — is written the
//     same way, strictly after every segment it names is committed;
//  3. a fresh partition into the same directory deletes the manifest
//     first and sweeps stale *.tmp, so a crash at any point leaves
//     either a complete, trusted checkpoint or no manifest at all.

const manifestName = "MANIFEST.json"

// manifestVersion gates the resume format; bump on incompatible change.
const manifestVersion = 1

var metricCheckpointWrites = obs.Default.Counter("dmc_checkpoint_writes_total",
	"Checkpoint manifests committed (segment set durably on disk).")

type manifest struct {
	Version int `json:"version"`

	// Input identity: a checkpoint is only valid for the exact file it
	// was partitioned from.
	Input        string `json:"input"`
	InputSize    int64  `json:"input_size"`
	InputModTime int64  `json:"input_modtime_unixnano"`

	Cols     int           `json:"cols"`
	Rows     int           `json:"rows"`
	Ones     []int         `json:"ones"`
	Segments []manifestSeg `json:"segments"`
}

type manifestSeg struct {
	Bucket int    `json:"bucket"`
	File   string `json:"file"` // relative to the checkpoint dir
	Rows   int    `json:"rows"`
	Size   int64  `json:"size"`
	Legacy bool   `json:"legacy"`
}

// clearCheckpoint invalidates any previous checkpoint in dir before a
// fresh partition writes into it: the manifest goes first (nothing
// trusts the directory afterwards), then stale *.tmp from a crashed
// writer are swept.
func clearCheckpoint(dir string) error {
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil && !os.IsNotExist(err) {
		return err
	}
	stale, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		return err
	}
	for _, f := range stale {
		if err := os.Remove(f); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// writeManifest commits the checkpoint: it records the input identity
// and the committed segment list, via the same tmp+fsync+rename dance
// as the segments, strictly after all of them. Runs through cfg.fs()
// so the fault matrix can kill the commit itself.
func writeManifest(input string, p *Partitioned) error {
	abs, err := filepath.Abs(input)
	if err != nil {
		abs = input
	}
	fi, err := os.Stat(input)
	if err != nil {
		return fmt.Errorf("stream: checkpoint: stat input: %w", err)
	}
	m := manifest{
		Version:      manifestVersion,
		Input:        abs,
		InputSize:    fi.Size(),
		InputModTime: fi.ModTime().UnixNano(),
		Cols:         p.cols,
		Rows:         p.rows,
		Ones:         p.ones,
	}
	for _, b := range p.buckets {
		sfi, err := os.Stat(b.path)
		if err != nil {
			return fmt.Errorf("stream: checkpoint: stat segment: %w", err)
		}
		m.Segments = append(m.Segments, manifestSeg{
			Bucket: b.bkt,
			File:   filepath.Base(b.path),
			Rows:   b.rows,
			Size:   sfi.Size(),
			Legacy: b.legacy,
		})
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	final := filepath.Join(p.dir, manifestName)
	f, err := p.cfg.fs().Create(final + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := p.cfg.fs().Rename(final+".tmp", final); err != nil {
		return err
	}
	metricCheckpointWrites.Inc()
	return nil
}

// tryResume loads a checkpoint from cfg.CheckpointDir if its manifest
// exists, matches the input file byte-for-byte by proxy (size +
// modtime), and every segment it names is present at the recorded
// size. Any mismatch returns an error and the caller partitions
// afresh — resume is an optimization, never a correctness risk.
func tryResume(input string, cfg Config) (*Partitioned, error) {
	data, err := os.ReadFile(filepath.Join(cfg.CheckpointDir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("stream: checkpoint: bad manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("stream: checkpoint: manifest version %d, want %d", m.Version, manifestVersion)
	}
	fi, err := os.Stat(input)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(input)
	if err != nil {
		abs = input
	}
	if m.Input != abs || m.InputSize != fi.Size() || m.InputModTime != fi.ModTime().UnixNano() {
		return nil, fmt.Errorf("stream: checkpoint: input changed since checkpoint (%s)", m.Input)
	}
	if len(m.Ones) != m.Cols {
		return nil, fmt.Errorf("stream: checkpoint: manifest has %d ones for %d cols", len(m.Ones), m.Cols)
	}
	p := &Partitioned{
		dir:     cfg.CheckpointDir,
		cols:    m.Cols,
		rows:    m.Rows,
		ones:    m.Ones,
		cfg:     cfg,
		keep:    true,
		readers: make(map[*passReader]struct{}),
	}
	rowSum := 0
	for _, s := range m.Segments {
		path := filepath.Join(cfg.CheckpointDir, s.File)
		sfi, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("stream: checkpoint: segment missing: %w", err)
		}
		if sfi.Size() != s.Size {
			return nil, fmt.Errorf("stream: checkpoint: segment %s is %d bytes, manifest says %d",
				s.File, sfi.Size(), s.Size)
		}
		p.buckets = append(p.buckets, bucket{bkt: s.Bucket, path: path, rows: s.Rows, legacy: s.Legacy})
		rowSum += s.Rows
	}
	if rowSum != m.Rows {
		return nil, fmt.Errorf("stream: checkpoint: segments hold %d rows, manifest says %d", rowSum, m.Rows)
	}
	return p, nil
}
