package stream

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dmc/internal/core"
	"dmc/internal/fault"
	"dmc/internal/matrix"
	"dmc/internal/rules"
)

// TestCheckpointResumeParity: a checkpointed mine followed by a resumed
// mine of the same input yields the identical rule set, skips the
// partition pass entirely (no new manifest commit), and works across
// codecs and worker counts.
func TestCheckpointResumeParity(t *testing.T) {
	m := streamRandomMatrix(21, 400, 24)
	path := writeTemp(t, m, matrix.ExtBinary)
	want, _ := core.DMCImp(m, core.FromPercent(75), core.Options{})

	for _, legacy := range []bool{false, true} {
		ckpt := t.TempDir()
		cfg := Config{CheckpointDir: ckpt, LegacyCodec: legacy, Workers: 2}
		first, _, err := MineImplicationsCfg(path, core.FromPercent(75), core.Options{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := rules.DiffImplications(first, want); d != "" {
			t.Fatalf("checkpointed mine diverged:\n%s", d)
		}
		if _, err := os.Stat(filepath.Join(ckpt, manifestName)); err != nil {
			t.Fatalf("no manifest after checkpointed mine: %v", err)
		}

		commits := metricCheckpointWrites.Value()
		cfg.Resume = true
		cfg.Workers = 8
		resumed, _, err := MineImplicationsCfg(path, core.FromPercent(75), core.Options{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := rules.DiffImplications(resumed, want); d != "" {
			t.Fatalf("resumed mine diverged:\n%s", d)
		}
		if got := metricCheckpointWrites.Value(); got != commits {
			t.Fatalf("resume re-partitioned: %d new manifest commits", got-commits)
		}
	}
}

// TestCheckpointInvalidatedByInputChange: a resume against a modified
// input must refuse the stale checkpoint and re-partition.
func TestCheckpointInvalidatedByInputChange(t *testing.T) {
	m1 := streamRandomMatrix(22, 300, 24)
	m2 := streamRandomMatrix(23, 280, 24)
	dir := t.TempDir()
	path := filepath.Join(dir, "m"+matrix.ExtBinary)
	if err := matrix.Save(path, m1); err != nil {
		t.Fatal(err)
	}
	ckpt := t.TempDir()
	if _, _, err := MineImplicationsCfg(path, core.FromPercent(75), core.Options{}, Config{CheckpointDir: ckpt}); err != nil {
		t.Fatal(err)
	}

	if err := matrix.Save(path, m2); err != nil {
		t.Fatal(err)
	}
	// Defeat modtime granularity: make the rewrite unambiguous.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	want, _ := core.DMCImp(m2, core.FromPercent(75), core.Options{})
	commits := metricCheckpointWrites.Value()
	got, _, err := MineImplicationsCfg(path, core.FromPercent(75), core.Options{}, Config{CheckpointDir: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := rules.DiffImplications(got, want); d != "" {
		t.Fatalf("stale checkpoint leaked into the result:\n%s", d)
	}
	if metricCheckpointWrites.Value() != commits+1 {
		t.Fatal("changed input did not force a re-partition")
	}
}

// TestCheckpointCrashLeavesNoManifest: killing the manifest commit
// leaves the directory without a trusted checkpoint; the next resume
// run partitions afresh and still mines correctly.
func TestCheckpointCrashLeavesNoManifest(t *testing.T) {
	m := streamRandomMatrix(24, 300, 24)
	path := writeTemp(t, m, matrix.ExtBinary)
	ckpt := t.TempDir()

	inj := fault.NewInjector(fault.Scenario{Name: "kill-manifest", FailSyncAt: 1, PathContains: manifestName})
	_, _, err := MineImplicationsCfg(path, core.FromPercent(75), core.Options{}, Config{CheckpointDir: ckpt, FS: inj})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("manifest commit should have failed, got %v", err)
	}
	if _, serr := os.Stat(filepath.Join(ckpt, manifestName)); !os.IsNotExist(serr) {
		t.Fatal("a failed commit left a manifest behind")
	}

	want, _ := core.DMCImp(m, core.FromPercent(75), core.Options{})
	got, _, err := MineImplicationsCfg(path, core.FromPercent(75), core.Options{}, Config{CheckpointDir: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := rules.DiffImplications(got, want); d != "" {
		t.Fatalf("post-crash re-partition diverged:\n%s", d)
	}
}

// TestCheckpointSweepsStaleTmp: a crashed writer's *.tmp litter is
// removed when the next partition reuses the directory.
func TestCheckpointSweepsStaleTmp(t *testing.T) {
	m := streamRandomMatrix(25, 120, 16)
	path := writeTemp(t, m, matrix.ExtBinary)
	ckpt := t.TempDir()
	stale := filepath.Join(ckpt, "bucket-99.rows.tmp")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := PartitionWith(path, Config{CheckpointDir: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, serr := os.Stat(stale); !os.IsNotExist(serr) {
		t.Fatal("stale tmp survived a fresh partition")
	}
}

// TestCheckpointSegmentDamageForcesRepartition: a segment truncated
// after commit fails manifest validation, so resume re-partitions
// instead of mining short.
func TestCheckpointSegmentDamageForcesRepartition(t *testing.T) {
	m := streamRandomMatrix(26, 300, 24)
	path := writeTemp(t, m, matrix.ExtBinary)
	ckpt := t.TempDir()
	p, err := PartitionWith(path, Config{CheckpointDir: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	seg := p.buckets[0].path
	p.Close()
	if err := os.Truncate(seg, 1); err != nil {
		t.Fatal(err)
	}

	want, _ := core.DMCImp(m, core.FromPercent(75), core.Options{})
	commits := metricCheckpointWrites.Value()
	got, _, err := MineImplicationsCfg(path, core.FromPercent(75), core.Options{}, Config{CheckpointDir: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := rules.DiffImplications(got, want); d != "" {
		t.Fatalf("damaged checkpoint leaked into the result:\n%s", d)
	}
	if metricCheckpointWrites.Value() != commits+1 {
		t.Fatal("damaged segment did not force a re-partition")
	}
}
