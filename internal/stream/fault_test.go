package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"dmc/internal/core"
	"dmc/internal/fault"
	"dmc/internal/matrix"
	"dmc/internal/rules"
)

// fastRetry keeps the fault matrix quick: real backoff shapes, µs scale.
var fastRetry = fault.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}

// waitGoroutines waits for the goroutine count to drain back to the
// baseline (readers and workers exit asynchronously after a mine).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Errorf("goroutines leaked: %d > baseline %d", got, base)
	}
}

// TestFaultMatrix is the acceptance matrix of ISSUE: deterministic
// failure scenarios × worker counts × spill codecs. Every cell must end
// in exactly one of two states — the exact rule set of an in-memory
// mine (transient faults ridden out), or a typed error (*PassError /
// *SpillError / context error) — and never wrong rules, leaked
// goroutines, or a hung mine.
func TestFaultMatrix(t *testing.T) {
	m := streamRandomMatrix(42, 400, 24)
	path := writeTemp(t, m, matrix.ExtBinary)
	want, _ := core.DMCImp(m, core.FromPercent(75), core.Options{})

	scenarios := []fault.Scenario{
		{Name: "fail-3rd-read-transient", FailReadAt: 3, Transient: true},
		{Name: "fail-read-forever", FailReadAt: 2, FailForever: true},
		{Name: "partial-write-transient", PartialWriteEvery: 3, Transient: true},
		{Name: "fail-write-permanent", FailWriteAt: 2},
		{Name: "enospc", FailWriteAt: 1, FailForever: true, ENOSPC: true},
		{Name: "fail-2nd-open", FailOpenAt: 2},
		{Name: "short-reads", ShortReadEvery: 2},
	}
	for _, sc := range scenarios {
		for _, workers := range []int{1, 2, 8} {
			for _, legacy := range []bool{false, true} {
				name := fmt.Sprintf("%s/w%d/legacy=%v", sc.Name, workers, legacy)
				t.Run(name, func(t *testing.T) {
					base := runtime.NumGoroutine()
					cfg := Config{
						TmpDir:      t.TempDir(),
						Workers:     workers,
						LegacyCodec: legacy,
						FS:          fault.NewInjector(sc),
						Retry:       fastRetry,
					}
					got, _, err := MineImplicationsCfg(path, core.FromPercent(75), core.Options{}, cfg)
					if err != nil {
						var pe *PassError
						var se *SpillError
						if !errors.As(err, &pe) && !errors.As(err, &se) {
							t.Fatalf("untyped failure: %v", err)
						}
						if sc.ENOSPC && !errors.Is(err, syscall.ENOSPC) {
							t.Fatalf("ENOSPC scenario lost the errno: %v", err)
						}
					} else if d := rules.DiffImplications(got, want); d != "" {
						t.Fatalf("fault scenario changed the rule set:\n%s", d)
					}
					waitGoroutines(t, base)
				})
			}
		}
	}
}

// streamRandomMatrix is randomMatrix with its own deterministic seed,
// for tests that share the package-level helper.
func streamRandomMatrix(seed int64, n, mcols int) *matrix.Matrix {
	return randomMatrix(rand.New(rand.NewSource(seed)), n, mcols)
}

// TestFaultMatrixCancel is the mid-pass-cancel row of the matrix: a
// latency-injected disk plus a short deadline cancels the mine while a
// replay pass is in flight. The run must end in a context error (or, if
// it squeaked through, exact rules) with every goroutine gone.
func TestFaultMatrixCancel(t *testing.T) {
	m := streamRandomMatrix(7, 1500, 32)
	path := writeTemp(t, m, matrix.ExtBinary)
	want, _ := core.DMCImp(m, core.FromPercent(75), core.Options{})

	for _, workers := range []int{1, 2, 8} {
		for _, legacy := range []bool{false, true} {
			t.Run(fmt.Sprintf("w%d/legacy=%v", workers, legacy), func(t *testing.T) {
				base := runtime.NumGoroutine()
				before := metricMinesCancelled.Value()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
				defer cancel()
				cfg := Config{
					TmpDir:      t.TempDir(),
					Workers:     workers,
					LegacyCodec: legacy,
					Ctx:         ctx,
					FS:          fault.NewInjector(fault.Scenario{Latency: 200 * time.Microsecond}),
					Retry:       fastRetry,
				}
				got, _, err := MineImplicationsCfg(path, core.FromPercent(75), core.Options{}, cfg)
				if err != nil {
					if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
						t.Fatalf("cancelled mine returned non-context error: %v", err)
					}
					if metricMinesCancelled.Value() <= before {
						t.Error("dmc_mines_cancelled_total did not move")
					}
				} else if d := rules.DiffImplications(got, want); d != "" {
					t.Fatalf("rules diverged:\n%s", d)
				}
				waitGoroutines(t, base)
			})
		}
	}
}

// TestCancelledPassReleasesFDs drives the cancellation path below the
// Mine wrappers: views must observe the context's own error and the
// partition must end with zero open spill fds.
func TestCancelledPassReleasesFDs(t *testing.T) {
	m := streamRandomMatrix(11, 600, 24)
	path := writeTemp(t, m, matrix.ExtBinary)
	ctx, cancel := context.WithCancel(context.Background())
	p, err := PartitionWith(path, Config{TmpDir: t.TempDir(), Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	views := p.ConcurrentPass(2)
	views[0].Row(0) // pass underway, reader live
	cancel()

	var wg sync.WaitGroup
	for i, v := range views {
		wg.Add(1)
		go func(i int, v core.Rows) {
			defer wg.Done()
			start := 0
			if i == 0 {
				start = 1
			}
			err := core.CapturePass(func() {
				for r := start; r < v.Len(); r++ {
					v.Row(r)
				}
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("view %d: want context.Canceled through the pass, got %v", i, err)
			}
		}(i, v)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if fds := p.openFDs.Load(); fds != 0 {
		t.Fatalf("spill fds leaked: %d", fds)
	}
}

// corruptOnceFS flips the final byte of the first segment read that
// reaches end-of-file, exactly once across the FS — transient
// corruption. The framed codec must detect it (CRC), re-read the
// segment, and deliver the exact rule set.
type corruptOnceFS struct {
	mu   sync.Mutex
	done bool
}

func (c *corruptOnceFS) Create(name string) (fault.File, error) { return fault.OS.Create(name) }
func (c *corruptOnceFS) Append(name string) (fault.File, error) { return fault.OS.Append(name) }
func (c *corruptOnceFS) Rename(o, n string) error               { return fault.OS.Rename(o, n) }
func (c *corruptOnceFS) Open(name string) (fault.File, error) {
	f, err := fault.OS.Open(name)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &corruptOnceFile{File: f, fs: c, size: fi.Size()}, nil
}

type corruptOnceFile struct {
	fault.File
	fs   *corruptOnceFS
	size int64
}

func (cf *corruptOnceFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := cf.File.ReadAt(p, off)
	last := cf.size - 1
	if n > 0 && off <= last && off+int64(n) > last {
		cf.fs.mu.Lock()
		if !cf.fs.done && cf.size > 8 {
			cf.fs.done = true
			p[last-off] ^= 0x40
		}
		cf.fs.mu.Unlock()
	}
	return n, err
}

func TestCorruptFrameRereadRecovers(t *testing.T) {
	m := streamRandomMatrix(13, 500, 24)
	path := writeTemp(t, m, matrix.ExtBinary)
	want, _ := core.DMCImp(m, core.FromPercent(75), core.Options{})
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			cfg := Config{TmpDir: t.TempDir(), Workers: workers, FS: &corruptOnceFS{}, Retry: fastRetry}
			got, _, err := MineImplicationsCfg(path, core.FromPercent(75), core.Options{}, cfg)
			if err != nil {
				t.Fatalf("transient corruption must be ridden out, got %v", err)
			}
			if d := rules.DiffImplications(got, want); d != "" {
				t.Fatalf("recovery changed the rule set:\n%s", d)
			}
		})
	}
}

// TestCorruptSegmentOnDiskSurfacesTyped: persistent on-disk corruption
// must exhaust the re-read budget and surface a located typed error —
// never wrong rows.
func TestCorruptSegmentOnDiskSurfacesTyped(t *testing.T) {
	m := streamRandomMatrix(17, 500, 24)
	path := writeTemp(t, m, matrix.ExtBinary)
	p, err := PartitionWith(path, Config{TmpDir: t.TempDir(), Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seg := p.buckets[len(p.buckets)-1].path
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = core.DMCImpParallelSource(p, p.Ones(), core.FromPercent(75), core.Options{}, 2)
	if err == nil {
		t.Fatal("corrupt segment mined without error")
	}
	var pe *PassError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PassError, got %v", err)
	}
	if !errors.Is(err, matrix.ErrFormat) {
		t.Fatalf("corruption not classified as a format error: %v", err)
	}
	if pe.Bucket < 0 || pe.Segment == "" || pe.Frame < 0 {
		t.Fatalf("error does not locate the corruption: %+v", pe)
	}
}
