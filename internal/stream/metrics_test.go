package stream

import (
	"math/rand"
	"testing"

	"dmc/internal/core"
	"dmc/internal/matrix"
)

// TestSpillAndPassCounters checks that partitioning and mining feed the
// process-wide registry. Counters are global and monotonic, so the
// assertions are on deltas.
func TestSpillAndPassCounters(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(7)), 80, 16)
	path := writeTemp(t, m, matrix.ExtBinary)

	parts0 := metricPartitions.Value()
	rows0 := metricSpilledRows.Value()
	bytes0 := metricSpilledBytes.Value()
	buckets0 := metricSpillBuckets.Value()
	passes0 := metricPasses.Value()

	rs, _, err := MineImplications(path, core.FromPercent(80), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules mined")
	}

	if got := metricPartitions.Value() - parts0; got != 1 {
		t.Fatalf("partitions delta = %d, want 1", got)
	}
	if got := metricSpilledRows.Value() - rows0; got != int64(m.NumRows()) {
		t.Fatalf("spilled rows delta = %d, want %d", got, m.NumRows())
	}
	if got := metricSpilledBytes.Value() - bytes0; got <= 0 {
		t.Fatalf("spilled bytes delta = %d, want > 0", got)
	}
	if got := metricSpillBuckets.Value() - buckets0; got <= 0 {
		t.Fatalf("spill buckets delta = %d, want > 0", got)
	}
	// The imp pipeline replays the buckets once per phase: 100% phase
	// plus the <100% phase.
	if got := metricPasses.Value() - passes0; got != 2 {
		t.Fatalf("passes delta = %d, want 2", got)
	}
}
