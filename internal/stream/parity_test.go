package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dmc/internal/core"
	"dmc/internal/matrix"
	"dmc/internal/rules"
)

// TestStreamParityAcrossWorkers is the parity property for the parallel
// disk path: mining straight from a file — any worker fan-out, any
// partition sharding, framed or legacy spill codec, with and without a
// forced DMC-bitmap switch — must produce exactly the serial in-memory
// miner's rule set. Run under -race in CI, this also exercises the
// broadcast reader's concurrency.
func TestStreamParityAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomMatrix(rng, 300, 36)
	th := core.FromPercent(80)

	variants := []struct {
		name string
		opts core.Options
	}{
		{"default", core.Options{}},
		// Forced switch on the first row: the whole run exercises the
		// DMC-bitmap path, including the shared tail build and the
		// early-abandoned broadcast views it causes.
		{"bitmap", core.Options{BitmapMaxRows: m.NumRows() + 1, BitmapMinBytes: -1}},
	}
	configs := []Config{
		{Workers: 1},
		{Workers: 2, PartitionWorkers: 3},
		{Workers: 8, Prefetch: 1, BlockRows: 16},
		{Workers: 2, LegacyCodec: true},
	}

	for _, ext := range []string{matrix.ExtBinary, matrix.ExtText} {
		path := writeTemp(t, m, ext)
		for _, v := range variants {
			wantImp, _ := core.DMCImp(m, th, v.opts)
			wantSim, _ := core.DMCSim(m, th, v.opts)
			for _, cfg := range configs {
				name := fmt.Sprintf("%s/%s/w%d-pw%d-legacy%v", ext, v.name, cfg.Workers, cfg.PartitionWorkers, cfg.LegacyCodec)
				t.Run(name, func(t *testing.T) {
					gotImp, _, err := MineImplicationsCfg(path, th, v.opts, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if d := rules.DiffImplications(gotImp, wantImp); d != "" {
						t.Fatalf("imp mismatch:\n%s", d)
					}
					gotSim, _, err := MineSimilaritiesCfg(path, th, v.opts, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if d := rules.DiffSimilarities(gotSim, wantSim); d != "" {
						t.Fatalf("sim mismatch:\n%s", d)
					}
				})
			}
		}
	}
}

// TestConcurrentPassViews checks the broadcast invariant directly:
// every view of one ConcurrentPass sees the full row sequence, and the
// pass costs one read (openFDs returns to zero, reader map drains).
func TestConcurrentPassViews(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randomMatrix(rng, 200, 24)
	path := writeTemp(t, m, matrix.ExtBinary)
	p, err := PartitionWith(path, Config{TmpDir: t.TempDir(), Prefetch: 2, BlockRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var want []string
	serial := p.Pass()
	for i := 0; i < serial.Len(); i++ {
		want = append(want, key(serial.Row(i)))
	}

	const n = 4
	views := p.ConcurrentPass(n)
	got := make([][]string, n)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			rows := views[v]
			for i := 0; i < rows.Len(); i++ {
				got[v] = append(got[v], key(rows.Row(i)))
			}
		}(v)
	}
	wg.Wait()
	for v := 0; v < n; v++ {
		if len(got[v]) != len(want) {
			t.Fatalf("view %d saw %d rows, want %d", v, len(got[v]), len(want))
		}
		for i := range want {
			if got[v][i] != want[i] {
				t.Fatalf("view %d row %d differs", v, i)
			}
		}
	}
	if fds := p.openFDs.Load(); fds != 0 {
		t.Fatalf("%d spill fds still open after passes completed", fds)
	}
	p.mu.Lock()
	live := len(p.readers)
	p.mu.Unlock()
	if live != 0 {
		t.Fatalf("%d pass readers still registered", live)
	}
}

// TestAbandonedPassReleasesFiles is the fd-leak regression test: a pass
// abandoned before the final row (the DMC-bitmap switch-over ends a
// replay early, or a consumer just stops) must not leave bucket files
// open once the view is released or the partition closed.
func TestAbandonedPassReleasesFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randomMatrix(rng, 150, 24)
	path := writeTemp(t, m, matrix.ExtBinary)
	p, err := PartitionWith(path, Config{TmpDir: t.TempDir(), BlockRows: 4, Prefetch: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Abandon three passes mid-way: one released explicitly, one
	// dropped on the floor, one never read at all.
	rows := p.Pass().(*view)
	for i := 0; i < 10; i++ {
		rows.Row(i)
	}
	rows.Release()

	dropped := p.Pass()
	dropped.Row(0)
	_ = p.Pass()

	// Close must cancel the in-flight readers, wait for them, and
	// leave zero spill file handles open.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if fds := p.openFDs.Load(); fds != 0 {
		t.Fatalf("%d spill fds still open after Close", fds)
	}
	p.mu.Lock()
	live := len(p.readers)
	p.mu.Unlock()
	if live != 0 {
		t.Fatalf("%d pass readers still registered after Close", live)
	}

	// A pass started after Close fails as a PassError, not a deadlock.
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("pass after Close did not panic with PassError")
		} else if _, ok := r.(*PassError); !ok {
			t.Fatalf("panic value %T is not a PassError", r)
		}
	}()
	p.Pass().Row(0)
}

// TestStreamCounters extends the metrics coverage to the new frame and
// stall instruments.
func TestStreamCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := randomMatrix(rng, 120, 16)
	path := writeTemp(t, m, matrix.ExtBinary)

	frames0 := metricFrames.Value()
	depth0 := metricBroadcastDepth.Value()
	if _, _, err := MineImplications(path, core.FromPercent(80), core.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := metricFrames.Value() - frames0; got <= 0 {
		t.Fatalf("frames delta = %d, want > 0", got)
	}
	// The depth gauge must converge back to its pre-mine level once
	// all passes have drained (no queued frames leak from completed
	// passes; only a view abandoned without Release can strand one).
	if d := metricBroadcastDepth.Value() - depth0; d != 0 {
		t.Fatalf("broadcast depth delta = %v after mining, want 0", d)
	}
}
