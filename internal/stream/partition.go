package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dmc/internal/fault"
	"dmc/internal/matrix"
)

// Partitioned is the result of the first pass: per-column counts plus
// the on-disk density buckets. It implements core.ConcurrentSource;
// each Pass replays all rows sparsest-bucket-first through a
// prefetching background reader, and ConcurrentPass broadcasts one
// replay to several shard workers. Close cancels in-flight passes and
// removes the spill files.
type Partitioned struct {
	dir     string
	cols    int
	rows    int
	ones    []int
	buckets []bucket // ascending density; parallel partitioning may
	// write several segments per density bucket (one per partition
	// worker), kept adjacent so replay order stays bucket-monotone
	cfg Config

	keep bool // checkpoint mode: Close leaves the spill on disk

	mu      sync.Mutex
	readers map[*passReader]struct{} // in-flight pass readers
	closed  bool
	openFDs atomic.Int64 // spill file handles currently open (leak guard)
}

// bucket is one spill segment: a run of rows of a single density
// bucket. legacy records the on-disk codec so replay never has to
// sniff its own files.
type bucket struct {
	bkt    int
	path   string
	rows   int
	legacy bool
}

func (c Config) blockRowsVal() int {
	if c.BlockRows > 0 {
		return c.BlockRows
	}
	return matrix.DefaultBlockRows
}

// Partition streams the matrix file at path once, producing the counts
// and bucket spill files under a fresh directory inside tmpDir (""
// means the system temp directory). This compatibility form partitions
// on one goroutine; PartitionWith shards the pass.
func Partition(path, tmpDir string) (*Partitioned, error) {
	return PartitionWith(path, Config{TmpDir: tmpDir, Workers: 1})
}

// PartitionWith is Partition under Config control: cfg.PartitionWorkers
// (or Workers) goroutines split decode + bucket classification + spill
// encoding, each writing its own per-bucket segment files, with the
// per-column ones counts merged at the end.
func PartitionWith(path string, cfg Config) (*Partitioned, error) {
	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	if cfg.CheckpointDir != "" && cfg.Resume {
		if p, err := tryResume(path, cfg); err == nil {
			if cfg.OnResume != nil {
				cfg.OnResume()
			}
			return p, nil
		}
		// An invalid or missing checkpoint is not an error: fall
		// through and partition afresh, overwriting it.
	}
	rr, closer, err := matrix.OpenRowReader(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()

	var dir string
	keep := false
	if cfg.CheckpointDir != "" {
		// Checkpoint mode: a stable directory, stale tmp files and any
		// previous manifest cleared first, so a crash mid-partition can
		// never leave a manifest describing half-written segments.
		dir = cfg.CheckpointDir
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := clearCheckpoint(dir); err != nil {
			return nil, err
		}
		keep = true
	} else {
		dir, err = os.MkdirTemp(cfg.TmpDir, SpillDirPrefix)
		if err != nil {
			return nil, err
		}
	}
	p := &Partitioned{
		dir:     dir,
		cols:    rr.NumCols(),
		rows:    rr.NumRows(),
		ones:    make([]int, rr.NumCols()),
		cfg:     cfg,
		keep:    keep,
		readers: make(map[*passReader]struct{}),
	}
	ok := false
	defer func() {
		if !ok {
			p.Close()
		}
	}()

	nb := matrix.NumBuckets(rr.NumCols())
	var segs []bucket
	var spilledBytes int64
	if w := cfg.partitionWorkers(); w <= 1 {
		segs, spilledBytes, err = partitionSerial(rr, dir, nb, cfg, p.ones)
	} else {
		segs, spilledBytes, err = partitionParallel(rr, dir, nb, w, cfg, p.ones)
	}
	if err != nil {
		return nil, err
	}
	p.buckets = segs

	distinct := 0
	last := -1
	for _, s := range segs {
		if s.bkt != last {
			distinct++
			last = s.bkt
		}
	}
	metricPartitions.Inc()
	metricSpilledRows.Add(int64(p.rows))
	metricSpilledBytes.Add(spilledBytes)
	metricSpillBuckets.Add(int64(distinct))
	if keep {
		if err := writeManifest(path, p); err != nil {
			return nil, err
		}
	}
	ok = true
	return p, nil
}

func partitionSerial(rr matrix.RowReader, dir string, nb int, cfg Config, ones []int) ([]bucket, int64, error) {
	ss := newSpillSet(dir, "", nb, cfg)
	for i := 0; ; i++ {
		if i&511 == 0 {
			if err := cfg.ctxErr(); err != nil {
				ss.closeAll()
				return nil, 0, err
			}
		}
		row, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			ss.closeAll()
			return nil, 0, err
		}
		for _, c := range row {
			ones[c]++
		}
		if err := ss.write(matrix.BucketIndex(len(row)), row); err != nil {
			ss.closeAll()
			return nil, 0, err
		}
	}
	return ss.finish()
}

// partChunk is one unit of partition work: either decoded rows (binary
// input, decoded by the feeder) or raw text lines (text input, parsed
// by the workers — for text the parse is the expensive part, so it is
// what gets sharded).
type partChunk struct {
	blk   *matrix.RowBlock
	lines []string
}

func partitionParallel(rr matrix.RowReader, dir string, nb, w int, cfg Config, ones []int) ([]bucket, int64, error) {
	chunks := make(chan partChunk, 2*w)
	pool := sync.Pool{New: func() any { return new(matrix.RowBlock) }}
	cols := rr.NumCols()

	type partWorker struct {
		ss   *spillSet
		ones []int
		err  error
	}
	workers := make([]*partWorker, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		pw := &partWorker{
			ss:   newSpillSet(dir, fmt.Sprintf("-w%02d", i), nb, cfg),
			ones: make([]int, cols),
		}
		workers[i] = pw
		wg.Add(1)
		go func() {
			defer wg.Done()
			handle := func(row []matrix.Col) error {
				for _, c := range row {
					pw.ones[c]++
				}
				return pw.ss.write(matrix.BucketIndex(len(row)), row)
			}
			for ch := range chunks { // drain even after an error so the feeder never blocks
				if pw.err == nil {
					if ch.lines != nil {
						for _, ln := range ch.lines {
							row, err := matrix.ParseTextRow(ln, cols)
							if err == nil {
								err = handle(row)
							}
							if err != nil {
								pw.err = err
								break
							}
						}
					} else {
						for i := 0; i < ch.blk.Len(); i++ {
							if err := handle(ch.blk.Row(i)); err != nil {
								pw.err = err
								break
							}
						}
					}
				}
				if ch.blk != nil {
					pool.Put(ch.blk)
				}
			}
		}()
	}

	chunkRows := cfg.blockRowsVal()
	var feedErr error
	if trr, ok := rr.(*matrix.TextRowReader); ok {
		for feedErr == nil {
			if feedErr = cfg.ctxErr(); feedErr != nil {
				break
			}
			lines := make([]string, 0, chunkRows)
			for len(lines) < chunkRows {
				ln, err := trr.NextLine()
				if err == io.EOF {
					feedErr = io.EOF
					break
				}
				if err != nil {
					feedErr = err
					break
				}
				lines = append(lines, ln)
			}
			if len(lines) > 0 {
				chunks <- partChunk{lines: lines}
			}
		}
	} else {
		for feedErr == nil {
			if feedErr = cfg.ctxErr(); feedErr != nil {
				break
			}
			blk := pool.Get().(*matrix.RowBlock)
			blk.Reset()
			for blk.Len() < chunkRows {
				row, err := rr.Next()
				if err == io.EOF {
					feedErr = io.EOF
					break
				}
				if err != nil {
					feedErr = err
					break
				}
				blk.Append(row)
			}
			if blk.Len() > 0 {
				chunks <- partChunk{blk: blk}
			} else {
				pool.Put(blk)
			}
		}
	}
	close(chunks)
	wg.Wait()
	if feedErr == io.EOF {
		feedErr = nil
	}
	for _, pw := range workers {
		if feedErr == nil && pw.err != nil {
			feedErr = pw.err
		}
	}
	if feedErr != nil {
		for _, pw := range workers {
			pw.ss.closeAll()
		}
		return nil, 0, feedErr
	}

	// Merge: sum the per-worker ones counts and interleave the spill
	// segments bucket-major (worker-minor), so a replay still visits
	// densities in non-decreasing order.
	perWorker := make([]map[int]bucket, w)
	var spilledBytes int64
	for i, pw := range workers {
		for c, n := range pw.ones {
			ones[c] += n
		}
		segs, bytes, err := pw.ss.finish()
		if err != nil {
			for _, rest := range workers[i+1:] {
				rest.ss.closeAll()
			}
			return nil, 0, err
		}
		spilledBytes += bytes
		perWorker[i] = make(map[int]bucket, len(segs))
		for _, s := range segs {
			perWorker[i][s.bkt] = s
		}
	}
	var segs []bucket
	for b := 0; b < nb; b++ {
		for i := 0; i < w; i++ {
			if s, ok := perWorker[i][b]; ok {
				segs = append(segs, s)
			}
		}
	}
	return segs, spilledBytes, nil
}

// spillSet is one writer's set of per-bucket spill files, created
// lazily on the first row of each bucket. Every file is written to a
// ".tmp" name and committed by finish with an atomic rename (after an
// fsync in checkpoint mode), so a crash mid-partition never leaves a
// final-named segment with torn contents. Writes go through the
// fault-aware retry writer, so a transient blip costs a backoff, not
// the partition.
type spillSet struct {
	dir    string
	suffix string
	cfg    Config
	sync   bool // fsync before rename (checkpoint durability)
	files  []fault.File
	finals []string // committed path per open file
	bws    []*bufio.Writer
	blks   []*matrix.BlockWriter // nil per entry in legacy mode
	rows   []int
}

func newSpillSet(dir, suffix string, nb int, cfg Config) *spillSet {
	return &spillSet{
		dir:    dir,
		suffix: suffix,
		cfg:    cfg,
		sync:   cfg.CheckpointDir != "",
		files:  make([]fault.File, nb),
		finals: make([]string, nb),
		bws:    make([]*bufio.Writer, nb),
		blks:   make([]*matrix.BlockWriter, nb),
		rows:   make([]int, nb),
	}
}

func (s *spillSet) write(b int, row []matrix.Col) error {
	if s.files[b] == nil {
		final := filepath.Join(s.dir, fmt.Sprintf("bucket-%02d%s.rows", b, s.suffix))
		f, err := s.cfg.fs().Create(final + ".tmp")
		if err != nil {
			return &SpillError{Bucket: b, Path: final, Err: err}
		}
		s.files[b] = f
		s.finals[b] = final
		s.bws[b] = bufio.NewWriterSize(fault.NewRetryWriter(s.cfg.Ctx, f, s.cfg.Retry), 1<<16)
		if !s.cfg.LegacyCodec {
			bw, err := matrix.NewBlockWriter(s.bws[b], s.cfg.BlockRows, s.cfg.BlockBytes)
			if err != nil {
				return &SpillError{Bucket: b, Path: final, Err: err}
			}
			s.blks[b] = bw
		}
	}
	s.rows[b]++
	var err error
	if s.blks[b] != nil {
		err = s.blks[b].WriteRow(row)
	} else {
		err = matrix.WriteRawRow(s.bws[b], row)
	}
	if err != nil {
		return &SpillError{Bucket: b, Path: s.finals[b], Err: err}
	}
	return nil
}

// finish flushes, optionally fsyncs, closes and atomically renames
// every segment into place, returning the non-empty segments in bucket
// order plus the total bytes spilled.
func (s *spillSet) finish() ([]bucket, int64, error) {
	var segs []bucket
	var bytes int64
	for b, f := range s.files {
		if f == nil {
			continue
		}
		final := s.finals[b]
		var err error
		if s.blks[b] != nil {
			err = s.blks[b].Flush() // flushes the bufio.Writer too
		} else {
			err = s.bws[b].Flush()
		}
		if err == nil && s.sync {
			err = f.Sync()
		}
		if err != nil {
			s.closeFrom(b)
			return nil, 0, &SpillError{Bucket: b, Path: final, Err: err}
		}
		if fi, err := f.Stat(); err == nil {
			bytes += fi.Size()
		}
		if err := f.Close(); err != nil {
			s.closeFrom(b + 1)
			return nil, 0, &SpillError{Bucket: b, Path: final, Err: err}
		}
		s.files[b] = nil
		if err := s.cfg.fs().Rename(final+".tmp", final); err != nil {
			s.closeFrom(b + 1)
			return nil, 0, &SpillError{Bucket: b, Path: final, Err: err}
		}
		segs = append(segs, bucket{bkt: b, path: final, rows: s.rows[b], legacy: s.cfg.LegacyCodec})
	}
	return segs, bytes, nil
}

// closeAll closes every still-open file without flushing — the error
// path, where the spill directory (or the stale-tmp sweep of the next
// checkpoint run) cleans up the bytes. The point is not leaking the
// descriptors.
func (s *spillSet) closeAll() { s.closeFrom(0) }

func (s *spillSet) closeFrom(b int) {
	for ; b < len(s.files); b++ {
		if s.files[b] != nil {
			s.files[b].Close()
			os.Remove(s.finals[b] + ".tmp")
			s.files[b] = nil
		}
	}
}
