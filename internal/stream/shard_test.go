package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"dmc/internal/core"
	"dmc/internal/matrix"
	"dmc/internal/rules"
)

// TestStreamShardParity is the fleet decomposition over the disk path:
// mining a file with a column-shard restriction must return exactly the
// full streamed mine's rules whose owner falls in the shard, and the
// union over a disjoint covering set of shards must rebuild the full
// set — for both families, across worker fan-outs. This is what lets a
// fleet worker serve its shard from a streamed (larger-than-memory)
// replica.
func TestStreamShardParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := randomMatrix(rng, 250, 30)
	th := core.FromPercent(75)
	path := writeTemp(t, m, matrix.ExtBinary)

	wantImp, _ := core.DMCImp(m, th, core.Options{})
	wantSim, _ := core.DMCSim(m, th, core.Options{})

	cuts := []core.ShardRange{{Lo: 0, Hi: 7}, {Lo: 7, Hi: 8}, {Lo: 8, Hi: 21}, {Lo: 21, Hi: 30}}
	for _, cfg := range []Config{{Workers: 1}, {Workers: 4, BlockRows: 32}} {
		t.Run(fmt.Sprintf("w%d", cfg.Workers), func(t *testing.T) {
			var gotImp []rules.Implication
			var gotSim []rules.Similarity
			for i := range cuts {
				opts := core.Options{Shard: &cuts[i]}
				imp, _, err := MineImplicationsCfg(path, th, opts, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range imp {
					if int(r.From) < cuts[i].Lo || int(r.From) >= cuts[i].Hi {
						t.Fatalf("shard %v leaked rule %v", cuts[i], r)
					}
				}
				gotImp = append(gotImp, imp...)
				sim, _, err := MineSimilaritiesCfg(path, th, opts, cfg)
				if err != nil {
					t.Fatal(err)
				}
				gotSim = append(gotSim, sim...)
			}
			if d := rules.DiffImplications(gotImp, wantImp); d != "" {
				t.Fatalf("imp shard union mismatch:\n%s", d)
			}
			if d := rules.DiffSimilarities(gotSim, wantSim); d != "" {
				t.Fatalf("sim shard union mismatch:\n%s", d)
			}
		})
	}
}
