// Package stream mines matrix files directly from disk in the paper's
// true two-pass fashion, with memory bounded by the counter array
// rather than the data size.
//
// The first pass (Partition) streams the file once: it counts ones(c)
// per column and splits the rows into the density buckets of §4.1
// ([2^i, 2^{i+1}) by row weight), writing each bucket to its own
// temporary spill file in the block-framed raw-row codec. Every later
// pass replays the buckets sparsest-first — which is exactly how the
// paper realizes row re-ordering without sorting. The DMC pipelines
// then run unchanged on top via core.Source.
//
// The replay path is concurrent end to end: a background reader
// goroutine decodes frame k+1 while the miner consumes frame k
// (double-buffered prefetch), and the same reader broadcasts each pass
// once to any number of §7 shard workers through bounded ring channels
// (core.ConcurrentSource), so parallel disk-backed mining reads each
// pass exactly once. Partitioning itself can shard decode + bucket
// classification across goroutines. All of it is tuned through Config.
package stream

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dmc/internal/core"
	"dmc/internal/fault"
	"dmc/internal/obs"
	"dmc/internal/rules"
)

// Spill/pass/prefetch counters on the process-wide registry: the
// serving layer's /v1/metrics endpoint exposes these, which is how
// operators see whether a deployment is spilling to disk, how many
// replay passes the pipelines cost, and whether the miners are
// outrunning the prefetch reader (stalls) or the reader is outrunning
// the miners (queue depth pinned at the ring capacity).
var (
	metricPartitions = obs.Default.Counter("dmc_stream_partitions_total",
		"Completed first-pass partitionings of a matrix file.")
	metricSpilledRows = obs.Default.Counter("dmc_stream_spilled_rows_total",
		"Rows written to density-bucket spill files.")
	metricSpilledBytes = obs.Default.Counter("dmc_stream_spilled_bytes_total",
		"Bytes written to density-bucket spill files.")
	metricSpillBuckets = obs.Default.Counter("dmc_stream_spill_buckets_total",
		"Non-empty density buckets created by partitioning.")
	metricPasses = obs.Default.Counter("dmc_stream_passes_total",
		"Sequential passes replayed over the spill buckets.")
	metricFrames = obs.Default.Counter("dmc_stream_frames_total",
		"Row frames decoded and delivered by streaming replay passes.")
	metricPrefetchStalls = obs.Default.Counter("dmc_stream_prefetch_stalls_total",
		"Times a mining consumer blocked waiting on the prefetch reader.")
	metricBroadcastDepth = obs.Default.Gauge("dmc_stream_broadcast_depth",
		"Decoded row frames currently queued in broadcast ring buffers.")
	metricMinesCancelled = obs.Default.Counter("dmc_mines_cancelled_total",
		"Mining operations aborted by context cancellation or deadline.")
)

// SpillDirPrefix names the temp directories the partitioner creates
// under Config.TmpDir. Exported so a supervising layer (the dataset
// store's scratch sweep) can recognize spill debris left by a killed
// mine.
const SpillDirPrefix = "dmc-stream-"

// Config tunes the streaming substrate. The zero value is a sensible
// default everywhere: auto worker counts, block-framed spill codec,
// double-buffered prefetch.
type Config struct {
	// TmpDir is where spill directories are created ("" = system temp).
	TmpDir string

	// Workers is the §7 shard fan-out for the mining passes: 1 runs
	// the serial pipeline, ≤ 0 means one worker per CPU.
	Workers int

	// PartitionWorkers shards the first pass (decode + bucket
	// classification + spill encode); ≤ 0 follows Workers.
	PartitionWorkers int

	// BlockRows / BlockBytes bound a spill frame (whichever trips
	// first); ≤ 0 selects matrix.DefaultBlockRows / DefaultBlockBytes.
	BlockRows  int
	BlockBytes int

	// Prefetch is the ring capacity per consumer, in decoded frames:
	// how far the background reader may run ahead. ≤ 0 means 2 —
	// classic double buffering (decode frame k+1 while frame k is
	// consumed).
	Prefetch int

	// ReadBufBytes sizes the buffered reader over each spill file
	// (≤ 0 = 256KB).
	ReadBufBytes int

	// LegacyCodec spills bare raw-row records instead of block frames
	// — the pre-block on-disk format, kept as a migration/ablation
	// knob. Replay auto-detects per bucket, so readers handle both.
	LegacyCodec bool

	// Ctx, when non-nil, cancels the streaming substrate: the partition
	// feeder and every replay pass observe it and tear down promptly
	// (no leaked goroutines or spill fds). The Mine entry points also
	// thread it into core.Options.Ctx when that is unset, so one knob
	// cancels both the I/O and the scan loops.
	Ctx context.Context

	// FS routes every spill-file operation (create, open, rename); nil
	// means the real filesystem. Tests install a fault.Injector here to
	// drive the failure matrix.
	FS fault.FS

	// Retry bounds the transient-failure retry of spill reads and
	// writes (exponential backoff + jitter). The zero value is the
	// fault package default: 3 attempts, 2ms base delay.
	Retry fault.RetryPolicy

	// CheckpointDir, when non-empty, makes the spill persistent and
	// crash-safe instead of a throwaway temp directory: segments are
	// committed via temp-file + fsync + atomic rename, a MANIFEST.json
	// (written the same way, last) records the input identity and
	// segment list, and Close keeps everything on disk. A later run
	// with Resume set picks the partition up without re-reading the
	// input.
	CheckpointDir string

	// Resume, with CheckpointDir set, reuses a valid checkpoint in
	// CheckpointDir when its manifest matches the input file
	// (size+modtime) and every segment is intact; otherwise the
	// partition runs afresh and overwrites the checkpoint.
	Resume bool

	// OnResume, when non-nil, is called once if Resume actually picked
	// up a valid checkpoint instead of partitioning afresh — the signal
	// the job subsystem uses to count and journal resumed sessions.
	OnResume func()
}

func (c Config) prefetch() int {
	if c.Prefetch > 0 {
		return c.Prefetch
	}
	return 2
}

func (c Config) readBufBytes() int {
	if c.ReadBufBytes > 0 {
		return c.ReadBufBytes
	}
	return 1 << 18
}

func (c Config) partitionWorkers() int {
	if c.PartitionWorkers > 0 {
		return c.PartitionWorkers
	}
	return core.ResolveWorkers(c.Workers)
}

func (c Config) fs() fault.FS {
	if c.FS != nil {
		return c.FS
	}
	return fault.OS
}

func (c Config) ctxErr() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// PassError wraps a failure during a streaming pass, locating it when
// known: the density bucket, the spill segment file, and the frame
// index within it (-1 when unknown). It is the panic payload of an
// aborted pass (the core engines have no error channel); the Mine
// entry points return it as an ordinary error.
type PassError struct {
	Bucket  int    // density bucket index, -1 when unknown
	Segment string // spill segment base name, "" when unknown
	Frame   int64  // frame index within the segment, -1 when unknown
	Err     error
}

func (e *PassError) Error() string {
	msg := "stream: pass failed"
	if e.Segment != "" {
		msg += fmt.Sprintf(" (bucket %d, segment %s", e.Bucket, e.Segment)
		if e.Frame >= 0 {
			msg += fmt.Sprintf(", frame %d", e.Frame)
		}
		msg += ")"
	}
	return msg + ": " + e.Err.Error()
}
func (e *PassError) Unwrap() error { return e.Err }

// newPassError wraps err without location info; asPassError avoids
// double-wrapping errors the replay path already located.
func newPassError(err error) *PassError { return &PassError{Bucket: -1, Frame: -1, Err: err} }

func asPassError(err error) *PassError {
	var pe *PassError
	if errors.As(err, &pe) {
		return pe
	}
	return newPassError(err)
}

// SpillError wraps a failure while writing a spill segment during
// partitioning, naming the density bucket and file.
type SpillError struct {
	Bucket int
	Path   string
	Err    error
}

func (e *SpillError) Error() string {
	return fmt.Sprintf("stream: spill bucket %d (%s): %v", e.Bucket, filepath.Base(e.Path), e.Err)
}
func (e *SpillError) Unwrap() error { return e.Err }

// SourceError marks PassError as the core.SourceError pass-abort
// protocol, so the parallel source pipelines recover it per worker.
func (e *PassError) SourceError() {}

// NumCols returns the column count.
func (p *Partitioned) NumCols() int { return p.cols }

// NumRows returns the row count.
func (p *Partitioned) NumRows() int { return p.rows }

// Ones returns the per-column 1-counts from the first pass. The slice
// is owned by p; callers must not modify it.
func (p *Partitioned) Ones() []int { return p.ones }

// Close cancels any in-flight passes, waits for their readers to
// release the spill file handles, and removes the spill directory —
// unless the partition is a checkpoint (CheckpointDir), which stays on
// disk for a later Resume.
func (p *Partitioned) Close() error {
	p.mu.Lock()
	p.closed = true
	readers := make([]*passReader, 0, len(p.readers))
	for r := range p.readers {
		readers = append(readers, r)
	}
	p.mu.Unlock()
	for _, r := range readers {
		r.cancel()
	}
	for _, r := range readers {
		<-r.done
	}
	if p.keep {
		return nil
	}
	return os.RemoveAll(p.dir)
}

// MineImplications mines implication rules straight from a matrix file:
// one partitioning pass, then the DMC-imp pipeline streaming the
// buckets from disk (one extra pass per pipeline phase). Memory is
// bounded by the counter array and the per-column count slices. This
// compatibility form runs everything on one worker; use
// MineImplicationsCfg for the parallel disk path.
func MineImplications(path string, minconf core.Threshold, opts core.Options) ([]rules.Implication, core.Stats, error) {
	return MineImplicationsCfg(path, minconf, opts, Config{Workers: 1})
}

// MineImplicationsCfg is MineImplications with the streaming substrate
// under caller control: worker fan-out (the pass is read once and
// broadcast to all shards), spill codec framing, prefetch depth,
// cancellation, fault injection, and checkpoint/resume.
func MineImplicationsCfg(path string, minconf core.Threshold, opts core.Options, cfg Config) ([]rules.Implication, core.Stats, error) {
	if opts.Ctx == nil {
		opts.Ctx = cfg.Ctx
	}
	p, err := PartitionWith(path, cfg)
	if err != nil {
		return nil, core.Stats{}, noteCancelled(err)
	}
	defer p.Close()
	out, st, err := core.DMCImpParallelSource(p, p.Ones(), minconf, opts, cfg.Workers)
	return out, st, noteCancelled(err)
}

// noteCancelled counts a cancellation/deadline abort on
// dmc_mines_cancelled_total, passing the error through.
func noteCancelled(err error) error {
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		metricMinesCancelled.Inc()
	}
	return err
}

// MineSimilarities is MineImplications for similarity rules.
func MineSimilarities(path string, minsim core.Threshold, opts core.Options) ([]rules.Similarity, core.Stats, error) {
	return MineSimilaritiesCfg(path, minsim, opts, Config{Workers: 1})
}

// MineSimilaritiesCfg is MineImplicationsCfg for similarity rules.
func MineSimilaritiesCfg(path string, minsim core.Threshold, opts core.Options, cfg Config) ([]rules.Similarity, core.Stats, error) {
	if opts.Ctx == nil {
		opts.Ctx = cfg.Ctx
	}
	p, err := PartitionWith(path, cfg)
	if err != nil {
		return nil, core.Stats{}, noteCancelled(err)
	}
	defer p.Close()
	out, st, err := core.DMCSimParallelSource(p, p.Ones(), minsim, opts, cfg.Workers)
	return out, st, noteCancelled(err)
}
