// Package stream mines matrix files directly from disk in the paper's
// true two-pass fashion, with memory bounded by the counter array
// rather than the data size.
//
// The first pass (Partition) streams the file once: it counts ones(c)
// per column and splits the rows into the density buckets of §4.1
// ([2^i, 2^{i+1}) by row weight), writing each bucket to its own
// temporary spill file. Every later pass replays the buckets
// sparsest-first — which is exactly how the paper realizes row
// re-ordering without sorting. The DMC pipelines then run unchanged on
// top via core.Source.
package stream

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dmc/internal/core"
	"dmc/internal/matrix"
	"dmc/internal/obs"
	"dmc/internal/rules"
)

// Spill/pass counters on the process-wide registry: the serving
// layer's /v1/metrics endpoint exposes these, which is how operators
// see whether a deployment is spilling to disk and how many replay
// passes the pipelines cost.
var (
	metricPartitions = obs.Default.Counter("dmc_stream_partitions_total",
		"Completed first-pass partitionings of a matrix file.")
	metricSpilledRows = obs.Default.Counter("dmc_stream_spilled_rows_total",
		"Rows written to density-bucket spill files.")
	metricSpilledBytes = obs.Default.Counter("dmc_stream_spilled_bytes_total",
		"Bytes written to density-bucket spill files.")
	metricSpillBuckets = obs.Default.Counter("dmc_stream_spill_buckets_total",
		"Non-empty density buckets created by partitioning.")
	metricPasses = obs.Default.Counter("dmc_stream_passes_total",
		"Sequential passes replayed over the spill buckets.")
)

// Partitioned is the result of the first pass: per-column counts plus
// the on-disk density buckets. It implements core.Source; each Pass
// replays all rows sparsest-bucket-first. Close removes the spill
// files.
type Partitioned struct {
	dir     string
	cols    int
	rows    int
	ones    []int
	buckets []bucket // ascending density, only non-empty ones
}

type bucket struct {
	path string
	rows int
}

// Partition streams the matrix file at path once, producing the counts
// and bucket spill files under a fresh directory inside tmpDir (""
// means the system temp directory).
func Partition(path, tmpDir string) (*Partitioned, error) {
	rr, closer, err := matrix.OpenRowReader(path)
	if err != nil {
		return nil, err
	}
	defer closer.Close()

	dir, err := os.MkdirTemp(tmpDir, "dmc-stream-")
	if err != nil {
		return nil, err
	}
	p := &Partitioned{dir: dir, cols: rr.NumCols(), rows: rr.NumRows(), ones: make([]int, rr.NumCols())}
	ok := false
	defer func() {
		if !ok {
			p.Close()
		}
	}()

	nb := matrix.NumBuckets(rr.NumCols())
	files := make([]*os.File, nb)
	writers := make([]*bufio.Writer, nb)
	counts := make([]int, nb)
	for {
		row, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for _, c := range row {
			p.ones[c]++
		}
		b := matrix.BucketIndex(len(row))
		if writers[b] == nil {
			f, err := os.Create(filepath.Join(dir, fmt.Sprintf("bucket-%02d.rows", b)))
			if err != nil {
				return nil, err
			}
			files[b] = f
			writers[b] = bufio.NewWriterSize(f, 1<<18)
		}
		if err := matrix.WriteRawRow(writers[b], row); err != nil {
			return nil, err
		}
		counts[b]++
	}
	var spilledBytes int64
	for b, w := range writers {
		if w == nil {
			continue
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		if fi, err := files[b].Stat(); err == nil {
			spilledBytes += fi.Size()
		}
		if err := files[b].Close(); err != nil {
			return nil, err
		}
		p.buckets = append(p.buckets, bucket{path: files[b].Name(), rows: counts[b]})
	}
	metricPartitions.Inc()
	metricSpilledRows.Add(int64(p.rows))
	metricSpilledBytes.Add(spilledBytes)
	metricSpillBuckets.Add(int64(len(p.buckets)))
	ok = true
	return p, nil
}

// NumCols returns the column count.
func (p *Partitioned) NumCols() int { return p.cols }

// NumRows returns the row count.
func (p *Partitioned) NumRows() int { return p.rows }

// Ones returns the per-column 1-counts from the first pass. The slice
// is owned by p; callers must not modify it.
func (p *Partitioned) Ones() []int { return p.ones }

// Pass starts a fresh sequential pass over all rows, sparsest bucket
// first. The returned Rows reads lazily from the spill files; an I/O
// error mid-pass panics with a *PassError (the core engines have no
// error channel), which MineImplications and MineSimilarities recover
// into an ordinary error.
func (p *Partitioned) Pass() core.Rows {
	metricPasses.Inc()
	return &bucketRows{p: p}
}

// Close removes the spill directory.
func (p *Partitioned) Close() error { return os.RemoveAll(p.dir) }

// PassError wraps an I/O failure during a streaming pass.
type PassError struct{ Err error }

func (e *PassError) Error() string { return "stream: pass failed: " + e.Err.Error() }
func (e *PassError) Unwrap() error { return e.Err }

// bucketRows reads the buckets lazily; Row must be called with
// consecutive indices (the core.Rows contract).
type bucketRows struct {
	p     *Partitioned
	next  int
	bkt   int
	inBkt int
	file  *os.File
	br    *bufio.Reader
	buf   []matrix.Col
}

func (r *bucketRows) Len() int { return r.p.rows }

func (r *bucketRows) Row(i int) []matrix.Col {
	if i != r.next {
		panic(&PassError{fmt.Errorf("out-of-order read: got %d, want %d", i, r.next)})
	}
	r.next++
	for r.file == nil || r.inBkt == r.p.buckets[r.bkt].rows {
		if r.file != nil {
			r.file.Close()
			r.file = nil
			r.bkt++
			r.inBkt = 0
		}
		if r.bkt >= len(r.p.buckets) {
			panic(&PassError{fmt.Errorf("read past final bucket")})
		}
		if r.inBkt == 0 {
			f, err := os.Open(r.p.buckets[r.bkt].path)
			if err != nil {
				panic(&PassError{err})
			}
			r.file = f
			r.br = bufio.NewReaderSize(f, 1<<18)
		}
	}
	row, err := matrix.ReadRawRow(r.br, r.p.cols, r.buf[:0])
	if err != nil {
		panic(&PassError{err})
	}
	r.buf = row
	r.inBkt++
	if r.next == r.p.rows { // final row: release the file handle
		r.file.Close()
		r.file = nil
	}
	return row
}

// MineImplications mines implication rules straight from a matrix file:
// one partitioning pass, then the DMC-imp pipeline streaming the
// buckets from disk (one extra pass per pipeline phase). Memory is
// bounded by the counter array and the per-column count slices.
func MineImplications(path string, minconf core.Threshold, opts core.Options) (rs []rules.Implication, st core.Stats, err error) {
	p, err := Partition(path, "")
	if err != nil {
		return nil, core.Stats{}, err
	}
	defer p.Close()
	defer recoverPass(&err)
	rs, st = core.DMCImpSource(p, p.Ones(), minconf, opts)
	return rs, st, nil
}

// MineSimilarities is MineImplications for similarity rules.
func MineSimilarities(path string, minsim core.Threshold, opts core.Options) (rs []rules.Similarity, st core.Stats, err error) {
	p, err := Partition(path, "")
	if err != nil {
		return nil, core.Stats{}, err
	}
	defer p.Close()
	defer recoverPass(&err)
	rs, st = core.DMCSimSource(p, p.Ones(), minsim, opts)
	return rs, st, nil
}

func recoverPass(err *error) {
	if r := recover(); r != nil {
		pe, ok := r.(*PassError)
		if !ok {
			panic(r)
		}
		*err = pe
	}
}
