package stream

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dmc/internal/core"
	"dmc/internal/matrix"
	"dmc/internal/rules"
)

func writeTemp(t *testing.T, m *matrix.Matrix, ext string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m"+ext)
	if err := matrix.Save(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func randomMatrix(rng *rand.Rand, n, mcols int) *matrix.Matrix {
	b := matrix.NewBuilder(mcols)
	for i := 0; i < n; i++ {
		var row []matrix.Col
		base := matrix.Col(rng.Intn(1+mcols/4) * 4)
		for d := 0; d < 4; d++ {
			if c := base + matrix.Col(d); int(c) < mcols && rng.Float64() < 0.7 {
				row = append(row, c)
			}
		}
		for c := 0; c < mcols; c++ {
			if rng.Float64() < 0.05 {
				row = append(row, matrix.Col(c))
			}
		}
		b.AddRow(row)
	}
	return b.Build()
}

func TestPartitionCountsAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 120, 24)
	path := writeTemp(t, m, matrix.ExtBinary)
	p, err := Partition(path, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.NumRows() != m.NumRows() || p.NumCols() != m.NumCols() {
		t.Fatalf("dims %dx%d", p.NumRows(), p.NumCols())
	}
	wantOnes := m.Ones()
	for c, k := range p.Ones() {
		if k != wantOnes[c] {
			t.Fatalf("ones[%d] = %d, want %d", c, k, wantOnes[c])
		}
	}
	// A pass delivers every row exactly once, in non-decreasing bucket
	// order, with the same multiset of rows as the matrix.
	rows := p.Pass()
	if rows.Len() != m.NumRows() {
		t.Fatalf("pass len %d", rows.Len())
	}
	seen := make(map[string]int)
	prevBucket := 0
	for i := 0; i < rows.Len(); i++ {
		row := rows.Row(i)
		b := matrix.BucketIndex(len(row))
		if b < prevBucket {
			t.Fatalf("bucket order violated at %d: %d after %d", i, b, prevBucket)
		}
		prevBucket = b
		seen[key(row)]++
	}
	for i := 0; i < m.NumRows(); i++ {
		k := key(m.Row(i))
		seen[k]--
		if seen[k] == 0 {
			delete(seen, k)
		}
	}
	if len(seen) != 0 {
		t.Fatalf("row multiset mismatch: %d residuals", len(seen))
	}
}

func key(row []matrix.Col) string {
	b := make([]byte, 0, len(row)*4)
	for _, c := range row {
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(b)
}

// Streamed mining must equal in-memory mining exactly, for both rule
// kinds, both file formats, and across thresholds.
func TestStreamMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 150, 30)
	for _, ext := range []string{matrix.ExtText, matrix.ExtBinary} {
		path := writeTemp(t, m, ext)
		for _, pct := range []int{100, 85, 70} {
			th := core.FromPercent(pct)
			wantImp, _ := core.DMCImp(m, th, core.Options{})
			gotImp, _, err := MineImplications(path, th, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if d := rules.DiffImplications(gotImp, wantImp); d != "" {
				t.Fatalf("%s %d%% imp:\n%s", ext, pct, d)
			}
			wantSim, _ := core.DMCSim(m, th, core.Options{})
			gotSim, _, err := MineSimilarities(path, th, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if d := rules.DiffSimilarities(gotSim, wantSim); d != "" {
				t.Fatalf("%s %d%% sim:\n%s", ext, pct, d)
			}
		}
	}
}

func TestStreamWithBitmapSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 100, 20)
	path := writeTemp(t, m, matrix.ExtBinary)
	th := core.FromPercent(80)
	opts := core.Options{BitmapMaxRows: 20, BitmapMinBytes: -1}
	want, _ := core.DMCImp(m, th, opts)
	got, st, err := MineImplications(path, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := rules.DiffImplications(got, want); d != "" {
		t.Fatalf("bitmap-switch stream mismatch:\n%s", d)
	}
	if st.SwitchPosLT < 0 && st.SwitchPos100 < 0 {
		t.Error("no bitmap switch recorded")
	}
}

func TestPartitionReuseAcrossThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 80, 16)
	path := writeTemp(t, m, matrix.ExtBinary)
	p, err := Partition(path, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, pct := range []int{90, 75} {
		th := core.FromPercent(pct)
		got, _ := core.DMCImpSource(p, p.Ones(), th, core.Options{})
		want, _ := core.DMCImp(m, th, core.Options{})
		if d := rules.DiffImplications(got, want); d != "" {
			t.Fatalf("reused partition at %d%%:\n%s", pct, d)
		}
	}
}

func TestPartitionCleansUp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 40, 8)
	path := writeTemp(t, m, matrix.ExtBinary)
	tmp := t.TempDir()
	p, err := Partition(path, tmp)
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(tmp)
	if len(entries) != 1 {
		t.Fatalf("expected one spill dir, found %d entries", len(entries))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(tmp)
	if len(entries) != 0 {
		t.Fatalf("spill dir not removed: %d entries", len(entries))
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(filepath.Join(t.TempDir(), "missing.dmb"), ""); err == nil {
		t.Error("missing file accepted")
	}
	// A corrupt file must fail the partitioning pass cleanly.
	bad := filepath.Join(t.TempDir(), "bad.dmb")
	if err := os.WriteFile(bad, []byte("DMCBgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(bad, ""); err == nil {
		t.Error("corrupt file accepted")
	}
	if _, _, err := MineImplications(bad, core.FromPercent(80), core.Options{}); err == nil {
		t.Error("MineImplications on corrupt file succeeded")
	}
}

func TestOutOfOrderReadPanicsAsPassError(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomMatrix(rng, 20, 8)
	path := writeTemp(t, m, matrix.ExtBinary)
	p, err := Partition(path, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rows := p.Pass()
	defer func() {
		r := recover()
		var pe *PassError
		if r == nil {
			t.Fatal("out-of-order read did not panic")
		}
		if !errors.As(r.(error), &pe) {
			t.Fatalf("panic value %T is not a PassError", r)
		}
	}()
	rows.Row(5)
}

func TestEmptyAndAllEmptyRows(t *testing.T) {
	for name, m := range map[string]*matrix.Matrix{
		"no rows":    matrix.New(4),
		"empty rows": matrix.FromRows(3, [][]matrix.Col{{}, {}, {1}}),
	} {
		path := writeTemp(t, m, matrix.ExtBinary)
		got, _, err := MineImplications(path, core.FromPercent(80), core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, _ := core.DMCImp(m, core.FromPercent(80), core.Options{})
		if d := rules.DiffImplications(got, want); d != "" {
			t.Fatalf("%s:\n%s", name, d)
		}
	}
}
